// Package faults is the deterministic fault-injection subsystem: a
// seeded Schedule, built from a declarative FaultSpec, that perturbs a
// simulation run with the failure modes extreme-scale systems actually
// see mid-collective:
//
//   - memory-pressure spikes that shrink a node's available aggregation
//     memory in the cluster ledger at a chosen round,
//   - straggler OSTs and degraded links that multiply storage and
//     fabric service times in virtual time,
//   - aggregator-node failures, which the collio engine answers with
//     runtime failover-by-remerge (the paper's Fig 5a/5b mechanism
//     invoked dynamically),
//   - message drop/delay on the shuffle exchanges, answered with
//     bounded exponential-backoff retries.
//
// Everything is deterministic: the same seed and spec produce a
// byte-identical fault trace and identical post-failover plans across
// runs. The package follows the repo's disabled-path contract — a nil
// *Schedule is inert, every method on it is nil-safe and free — and it
// never imports the layers it perturbs (cluster, mpi, pfs, collio);
// those layers hold a *Schedule and ask it questions.
package faults

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/stats"
)

// RetrySpec bounds the shuffle-exchange retry loop: a dropped message
// is retransmitted after a timeout that doubles (Backoff) per attempt,
// capped at MaxTimeoutSec, for at most MaxRetries attempts. Retry
// exhaustion still delivers (the simulation models the penalty, not
// data loss), so a collective always completes.
type RetrySpec struct {
	TimeoutSec    float64 `json:"timeout_s"`     // first retry timeout (default 2ms)
	Backoff       float64 `json:"backoff"`       // timeout multiplier per attempt (default 2)
	MaxTimeoutSec float64 `json:"max_timeout_s"` // timeout ceiling (default 50ms)
	MaxRetries    int     `json:"max_retries"`   // attempts before giving up (default 4)
}

// MemPressure shrinks a node's available aggregation memory by Bytes
// starting at the given engine round, as if a co-resident application
// claimed it. The squat is permanent for the run.
type MemPressure struct {
	Node  int   `json:"node"`  // node index, 0-based
	Round int   `json:"round"` // engine round the squat lands on
	Bytes int64 `json:"bytes"` // bytes removed from the node's budget
}

// SlowOST multiplies one OST's service time by Factor while active.
// UntilSec 0 means active forever from FromSec on.
type SlowOST struct {
	OST      int     `json:"ost"`     // OST index, 0-based
	Factor   float64 `json:"factor"`  // service-time multiplier (dimensionless, >= 1)
	FromSec  float64 `json:"from_s"`  // virtual seconds from run start
	UntilSec float64 `json:"until_s"` // virtual seconds; 0 = forever
}

// SlowLink multiplies the fabric service time of messages entering or
// leaving Node by Factor while active; UntilSec 0 means forever.
type SlowLink struct {
	Node     int     `json:"node"`    // node index, 0-based
	Factor   float64 `json:"factor"`  // fabric service-time multiplier (dimensionless, >= 1)
	FromSec  float64 `json:"from_s"`  // virtual seconds from run start
	UntilSec float64 `json:"until_s"` // virtual seconds; 0 = forever
}

// NodeFailure kills a node as an aggregator host from the given engine
// round on: every file domain whose aggregator lives there is remerged
// into a surviving sibling domain. Ranks on the node keep participating
// in the exchange (the paper's model loses the aggregation service, not
// the process's data).
type NodeFailure struct {
	Node  int `json:"node"`  // node index, 0-based
	Round int `json:"round"` // engine round the failure lands on
}

// RankFailure kills a single world rank as a coordination service from
// the given engine round on. Under the two-layer exchange a failed
// node leader hands leadership to the next-best-scored surviving rank
// on its node (see collio's leader failover); like NodeFailure, the
// rank's own data keeps flowing — what dies is the service role.
type RankFailure struct {
	Rank  int `json:"rank"`  // world rank, 0-based
	Round int `json:"round"` // engine round the failure lands on
}

// MessageSpec drives the per-message fault draws: each shuffle exchange
// is dropped with DropRate (costing a retry), and each inter-node
// message is delayed with DelayRate by an exponential extra latency of
// mean DelayMeanSec.
type MessageSpec struct {
	DropRate     float64 `json:"drop_rate"`    // probability in [0,1] per exchange
	DelayRate    float64 `json:"delay_rate"`   // probability in [0,1] per inter-node message
	DelayMeanSec float64 `json:"delay_mean_s"` // mean of the exponential extra latency, seconds
}

// Spec is the declarative FaultSpec: what to inject and when. The zero
// value injects nothing. See examples/chaos.json for the JSON form.
type Spec struct {
	Seed         uint64        `json:"seed"`
	Retry        RetrySpec     `json:"retry"`
	MemPressure  []MemPressure `json:"mem_pressure,omitempty"`
	SlowOSTs     []SlowOST     `json:"slow_osts,omitempty"`
	SlowLinks    []SlowLink    `json:"slow_links,omitempty"`
	NodeFailures []NodeFailure `json:"node_failures,omitempty"`
	RankFailures []RankFailure `json:"rank_failures,omitempty"`
	Messages     MessageSpec   `json:"messages"`
}

// LoadSpec reads a FaultSpec from a JSON file, rejecting unknown fields
// so typos fail loudly instead of silently injecting nothing.
func LoadSpec(path string) (Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return Spec{}, fmt.Errorf("faults: %w", err)
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("faults: %s: %w", path, err)
	}
	return s, nil
}

// Validate rejects nonsensical fault specifications.
func (s Spec) Validate() error {
	for i, p := range s.MemPressure {
		if p.Node < 0 || p.Round < 0 || p.Bytes <= 0 {
			return fmt.Errorf("faults: mem_pressure[%d]: node %d round %d bytes %d", i, p.Node, p.Round, p.Bytes)
		}
	}
	for i, o := range s.SlowOSTs {
		if o.OST < 0 || o.Factor < 1 {
			return fmt.Errorf("faults: slow_osts[%d]: ost %d factor %g (must be >= 1)", i, o.OST, o.Factor)
		}
		if o.UntilSec != 0 && o.UntilSec < o.FromSec {
			return fmt.Errorf("faults: slow_osts[%d]: until %g before from %g", i, o.UntilSec, o.FromSec)
		}
	}
	for i, l := range s.SlowLinks {
		if l.Node < 0 || l.Factor < 1 {
			return fmt.Errorf("faults: slow_links[%d]: node %d factor %g (must be >= 1)", i, l.Node, l.Factor)
		}
		if l.UntilSec != 0 && l.UntilSec < l.FromSec {
			return fmt.Errorf("faults: slow_links[%d]: until %g before from %g", i, l.UntilSec, l.FromSec)
		}
	}
	for i, n := range s.NodeFailures {
		if n.Node < 0 || n.Round < 0 {
			return fmt.Errorf("faults: node_failures[%d]: node %d round %d", i, n.Node, n.Round)
		}
	}
	for i, r := range s.RankFailures {
		if r.Rank < 0 || r.Round < 0 {
			return fmt.Errorf("faults: rank_failures[%d]: rank %d round %d", i, r.Rank, r.Round)
		}
	}
	m := s.Messages
	if m.DropRate < 0 || m.DropRate > 1 {
		return fmt.Errorf("faults: drop_rate %g outside [0,1]", m.DropRate)
	}
	if m.DelayRate < 0 || m.DelayRate > 1 {
		return fmt.Errorf("faults: delay_rate %g outside [0,1]", m.DelayRate)
	}
	if m.DelayMeanSec < 0 {
		return fmt.Errorf("faults: negative delay_mean_s %g", m.DelayMeanSec)
	}
	if m.DelayRate > 0 && m.DelayMeanSec == 0 {
		return fmt.Errorf("faults: delay_rate %g with zero delay_mean_s", m.DelayRate)
	}
	r := s.Retry
	if r.TimeoutSec < 0 || r.Backoff < 0 || r.MaxTimeoutSec < 0 || r.MaxRetries < 0 {
		return fmt.Errorf("faults: negative retry parameter %+v", r)
	}
	return nil
}

// withDefaults fills the retry parameters left zero.
func (r RetrySpec) withDefaults() RetrySpec {
	if r.TimeoutSec == 0 {
		r.TimeoutSec = 2e-3
	}
	if r.Backoff == 0 {
		r.Backoff = 2
	}
	if r.MaxTimeoutSec == 0 {
		r.MaxTimeoutSec = 50e-3
	}
	if r.MaxRetries == 0 {
		r.MaxRetries = 4
	}
	if r.MaxTimeoutSec < r.TimeoutSec {
		r.MaxTimeoutSec = r.TimeoutSec
	}
	return r
}

// handles bundles the instrument handles a Schedule resolves once at
// Bind; all nil (and updates free) without a registry.
type handles struct {
	injMem, injNode, injRank, injDrop, injDelay, injSlow *metrics.Counter
	retries                                              *metrics.Counter
	retrySeconds                                         *metrics.Counter
	foRemerges                                           *metrics.Counter
	foLeaders                                            *metrics.Counter
	foUnrecovered                                        *metrics.Counter
}

// Schedule is an armed fault plan for one simulation run. Methods are
// nil-safe: a nil *Schedule answers every query with "no fault" at zero
// cost, so the engine's hot path stays unconditional. A Schedule is
// single-run — build a fresh one per RunOnce.
//
// The plain counters (injected, failovers, ...) are written only from
// simulation context, which the engine serializes; like the cluster
// ledger they need no atomics.
type Schedule struct {
	spec    Spec
	rng     *stats.RNG // per-message delay draws, engine-serialized
	applied []bool     // mem-pressure entries already applied to the ledger

	bound  bool
	tracer *obs.Tracer
	h      handles

	injected    int64
	failovers   int64
	unrecovered int64
	dropped     int64
}

// NewSchedule validates and arms a spec. The entries are sorted so
// application order is deterministic regardless of declaration order.
func NewSchedule(spec Spec) (*Schedule, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	spec.Retry = spec.Retry.withDefaults()
	spec.MemPressure = append([]MemPressure(nil), spec.MemPressure...)
	sort.Slice(spec.MemPressure, func(i, j int) bool {
		a, b := spec.MemPressure[i], spec.MemPressure[j]
		if a.Round != b.Round {
			return a.Round < b.Round
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Bytes < b.Bytes
	})
	spec.NodeFailures = append([]NodeFailure(nil), spec.NodeFailures...)
	sort.Slice(spec.NodeFailures, func(i, j int) bool {
		a, b := spec.NodeFailures[i], spec.NodeFailures[j]
		if a.Round != b.Round {
			return a.Round < b.Round
		}
		return a.Node < b.Node
	})
	spec.RankFailures = append([]RankFailure(nil), spec.RankFailures...)
	sort.Slice(spec.RankFailures, func(i, j int) bool {
		a, b := spec.RankFailures[i], spec.RankFailures[j]
		if a.Round != b.Round {
			return a.Round < b.Round
		}
		return a.Rank < b.Rank
	})
	return &Schedule{
		spec:    spec,
		rng:     stats.NewRNG(spec.Seed ^ 0xfa017),
		applied: make([]bool, len(spec.MemPressure)),
	}, nil
}

// Spec returns the (normalized) spec the schedule was built from.
func (s *Schedule) Spec() Spec {
	if s == nil {
		return Spec{}
	}
	return s.spec
}

// Bind attaches the observability sinks and resolves instrument
// handles. Schedule-level faults (slow OSTs/links, node failures) count
// as injected here, once; per-event faults count as they occur.
// Idempotent; nil-safe in every argument.
func (s *Schedule) Bind(reg *metrics.Registry, t *obs.Tracer) {
	if s == nil || s.bound {
		return
	}
	s.bound = true
	s.tracer = t
	s.h = handles{
		injMem:   reg.Counter("faults_injected_total", "Faults injected, by class.", "class", "mem"),
		injNode:  reg.Counter("faults_injected_total", "Faults injected, by class.", "class", "node"),
		injRank:  reg.Counter("faults_injected_total", "Faults injected, by class.", "class", "rank"),
		injDrop:  reg.Counter("faults_injected_total", "Faults injected, by class.", "class", "drop"),
		injDelay: reg.Counter("faults_injected_total", "Faults injected, by class.", "class", "delay"),
		injSlow:  reg.Counter("faults_injected_total", "Faults injected, by class.", "class", "slow"),
		retries:  reg.Counter("faults_retries_total", "Shuffle retransmissions caused by dropped messages."),
		retrySeconds: reg.Counter("faults_retry_seconds_total",
			"Virtual seconds spent in retry backoff."),
		foRemerges: reg.Counter("failover_remerges_total",
			"File domains dynamically remerged into a sibling after their aggregator was lost."),
		foLeaders: reg.Counter("failover_leaders_total",
			"Node leaderships handed to the next-best rank after a leader failed (two-layer exchange)."),
		foUnrecovered: reg.Counter("failover_unrecovered_total",
			"Failed domains with no surviving sibling to absorb them."),
	}
	n := int64(len(s.spec.SlowOSTs) + len(s.spec.SlowLinks))
	if n > 0 {
		s.h.injSlow.Add(float64(n))
		s.injected += n
		for _, o := range s.spec.SlowOSTs {
			s.tracer.Instant(obs.EventFaultSlow, obs.NoLoc, int64(o.Factor*1e3), int64(o.OST))
		}
		for _, l := range s.spec.SlowLinks {
			s.tracer.Instant(obs.EventFaultSlow, obs.Loc{Rank: -1, Node: l.Node, Group: -1, Round: -1}, int64(l.Factor*1e3), -1)
		}
	}
	if k := int64(len(s.spec.NodeFailures)); k > 0 {
		s.h.injNode.Add(float64(k))
		s.injected += k
		for _, f := range s.spec.NodeFailures {
			s.tracer.Instant(obs.EventFaultNode, obs.Loc{Rank: -1, Node: f.Node, Group: -1, Round: -1}, 0, int64(f.Round))
		}
	}
	if k := int64(len(s.spec.RankFailures)); k > 0 {
		s.h.injRank.Add(float64(k))
		s.injected += k
		for _, f := range s.spec.RankFailures {
			s.tracer.Instant(obs.EventFaultRank, obs.Loc{Rank: f.Rank, Node: -1, Group: -1, Round: -1}, 0, int64(f.Round))
		}
	}
}

// NodeFailedBy reports whether node is failed at (or before) the given
// engine round — the failover predicate's node-death input. Pure, so
// every rank answers identically regardless of call order.
func (s *Schedule) NodeFailedBy(node, round int) bool {
	if s == nil {
		return false
	}
	for _, f := range s.spec.NodeFailures {
		if f.Node == node && f.Round <= round {
			return true
		}
	}
	return false
}

// RankFailedBy reports whether the given world rank is failed at (or
// before) the given engine round — the leader-failover predicate's
// input. Pure, so every rank answers identically.
func (s *Schedule) RankFailedBy(rank, round int) bool {
	if s == nil {
		return false
	}
	for _, f := range s.spec.RankFailures {
		if f.Rank == rank && f.Round <= round {
			return true
		}
	}
	return false
}

// PressureBy returns the cumulative memory pressure injected on node by
// the given round. Pure; the failover predicate uses this rather than
// the live ledger so control decisions are identical on every rank.
func (s *Schedule) PressureBy(node, round int) int64 {
	if s == nil {
		return 0
	}
	var b int64
	for _, p := range s.spec.MemPressure {
		if p.Node == node && p.Round <= round {
			b += p.Bytes
		}
	}
	return b
}

// ApplyPressure applies every not-yet-applied pressure entry due at or
// before round through the apply callback (which squats the bytes on
// the cluster ledger) — exactly once per entry, in sorted order. The
// ledger application is observability; the failover predicate reads
// PressureBy instead.
func (s *Schedule) ApplyPressure(round int, apply func(node int, bytes int64)) {
	if s == nil {
		return
	}
	for i, p := range s.spec.MemPressure {
		if s.applied[i] || p.Round > round {
			continue
		}
		s.applied[i] = true
		apply(p.Node, p.Bytes)
		s.injected++
		s.h.injMem.Inc()
		s.tracer.Instant(obs.EventFaultMem, obs.Loc{Rank: -1, Node: p.Node, Group: -1, Round: p.Round}, p.Bytes, int64(round))
	}
}

// factorAt folds an entry's activity window into a running product.
func factorAt(active bool, factor, acc float64) float64 {
	if active {
		return acc * factor
	}
	return acc
}

// OSTFactor returns the service-time multiplier for ost at virtual time
// now (1 when no straggler fault is active).
func (s *Schedule) OSTFactor(ost int, now float64) float64 {
	if s == nil {
		return 1
	}
	f := 1.0
	for _, o := range s.spec.SlowOSTs {
		if o.OST != ost {
			continue
		}
		f = factorAt(now >= o.FromSec && (o.UntilSec == 0 || now < o.UntilSec), o.Factor, f)
	}
	return f
}

// LinkFactor returns the fabric service-time multiplier for messages
// touching node at virtual time now.
func (s *Schedule) LinkFactor(node int, now float64) float64 {
	if s == nil {
		return 1
	}
	f := 1.0
	for _, l := range s.spec.SlowLinks {
		if l.Node != node {
			continue
		}
		f = factorAt(now >= l.FromSec && (l.UntilSec == 0 || now < l.UntilSec), l.Factor, f)
	}
	return f
}

// MessageDelay draws one inter-node message's extra delivery latency in
// virtual seconds (0 almost always). The draw consumes the schedule's
// serialized RNG, so a run's delay sequence is deterministic.
func (s *Schedule) MessageDelay(srcNode, dstNode int, now float64) float64 {
	if s == nil || s.spec.Messages.DelayRate <= 0 {
		return 0
	}
	if s.rng.Float64() >= s.spec.Messages.DelayRate {
		return 0
	}
	d := s.rng.Exp(s.spec.Messages.DelayMeanSec)
	s.injected++
	s.h.injDelay.Inc()
	s.tracer.Instant(obs.EventFaultDelay,
		obs.Loc{Rank: -1, Node: srcNode, Group: -1, Round: -1}, int64(d*1e9), int64(dstNode))
	return d
}

// mix hashes a (group, round, rank) coordinate into an independent RNG
// seed, so drop draws are a pure function of position — independent of
// the order ranks reach the exchange.
func mix(seed uint64, a, b, c int) uint64 {
	h := seed ^ 0x9e3779b97f4a7c15
	for _, v := range [3]uint64{uint64(a) + 1, uint64(b) + 1, uint64(c) + 1} {
		h ^= v * 0xbf58476d1ce4e5b9
		h = (h << 13) | (h >> 51)
		h *= 0x94d049bb133111eb
	}
	return h
}

// ExchangeDrops returns how many times rank's shuffle exchange for
// (group, round) is dropped before succeeding, capped at the retry
// budget. Deterministic and order-independent: the draw stream is
// seeded from the coordinate, not shared state.
func (s *Schedule) ExchangeDrops(group, round, rank int) int {
	if s == nil || s.spec.Messages.DropRate <= 0 {
		return 0
	}
	r := stats.NewRNG(mix(s.spec.Seed, group, round, rank))
	drops := 0
	for drops < s.spec.Retry.MaxRetries && r.Float64() < s.spec.Messages.DropRate {
		drops++
	}
	return drops
}

// RetryPenalty returns the virtual time a rank spends in backoff for
// the given number of drops: sum of min(timeout·backoff^i, maxTimeout).
func (s *Schedule) RetryPenalty(drops int) float64 {
	if s == nil || drops <= 0 {
		return 0
	}
	r := s.spec.Retry
	pen, t := 0.0, r.TimeoutSec
	for i := 0; i < drops; i++ {
		if t > r.MaxTimeoutSec {
			t = r.MaxTimeoutSec
		}
		pen += t
		t *= r.Backoff
	}
	return pen
}

// RecordDrops accounts one rank's round of dropped exchanges and the
// backoff penalty it paid.
func (s *Schedule) RecordDrops(loc obs.Loc, drops int, penalty float64) {
	if s == nil || drops <= 0 {
		return
	}
	s.dropped += int64(drops)
	s.injected += int64(drops)
	s.h.injDrop.Add(float64(drops))
	s.h.retries.Add(float64(drops))
	s.h.retrySeconds.Add(penalty)
	s.tracer.Instant(obs.EventFaultDrop, loc, int64(drops), int64(penalty*1e9))
}

// RecordFailover accounts one dynamic remerge: the taker aggregator
// absorbed the failed domain's remaining windows. bytes is the window
// extent moved; failed the failed domain's index.
func (s *Schedule) RecordFailover(loc obs.Loc, byNodeFailure bool, bytes int64, failed int) {
	if s == nil {
		return
	}
	s.failovers++
	s.h.foRemerges.Inc()
	s.tracer.Instant(obs.EventFailover, loc, bytes, int64(failed))
}

// RecordLeaderFailover accounts one leadership handoff under the
// two-layer exchange: the node's next-best rank (taker) took over for
// a failed leader. Both ranks are world ranks.
func (s *Schedule) RecordLeaderFailover(loc obs.Loc, failed, taker int) {
	if s == nil {
		return
	}
	s.failovers++
	s.h.foLeaders.Inc()
	s.tracer.Instant(obs.EventFailoverLeader, loc, int64(taker), int64(failed))
}

// RecordUnrecovered accounts a failed domain no surviving sibling could
// absorb (it keeps serving on the failed node — the degraded-but-
// complete outcome).
func (s *Schedule) RecordUnrecovered(loc obs.Loc, failed int) {
	if s == nil {
		return
	}
	s.unrecovered++
	s.h.foUnrecovered.Inc()
	s.tracer.Instant(obs.EventFailoverLost, loc, 0, int64(failed))
}

// Injected returns how many faults the run has injected so far.
func (s *Schedule) Injected() int64 {
	if s == nil {
		return 0
	}
	return s.injected
}

// Failovers returns how many dynamic remerges the run performed.
func (s *Schedule) Failovers() int64 {
	if s == nil {
		return 0
	}
	return s.failovers
}

// Unrecovered returns how many failed domains found no survivor.
func (s *Schedule) Unrecovered() int64 {
	if s == nil {
		return 0
	}
	return s.unrecovered
}

// Dropped returns how many exchange drops were injected.
func (s *Schedule) Dropped() int64 {
	if s == nil {
		return 0
	}
	return s.dropped
}
