package collio

import (
	"repro/internal/datatype"
	"repro/internal/faults"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Runtime failover-by-remerge: when fault injection kills an
// aggregator's node (or drains it below Plan.MemMin) mid-collective,
// the domain's remaining window schedule is absorbed by its sibling
// domain — the paper's workload-portion remerging (Fig 5a/5b) invoked
// dynamically — and the collective resumes from the failed round with
// no bytes lost or duplicated: the failed domain's already-served
// windows stay served, only the unserved remainder moves.
//
// The mutated plan intentionally violates Validate's window ordering
// (absorbed windows land behind the survivor's own schedule, padded
// with inert zero-length windows); Validate runs only on the pristine
// plan, and every engine site treats an empty window as a no-op.

// FoEvent records one failover decision of a round's check.
type FoEvent struct {
	Round         int
	Failed        int  // domain index whose aggregator was lost
	Taker         int  // domain index that absorbed it; -1 when no survivor existed
	ByNodeFailure bool // node death (vs memory exhaustion)
	Bytes         int64
}

// maybeFailover runs the round-r failover check, mutating the plan when
// a domain's aggregator is lost. It returns the events of the check —
// non-empty means the plan changed and callers must redo the request
// exchange. The decision is a pure function of (schedule, plan, round),
// so every rank — whether it shares the plan pointer or owns a copy —
// computes the identical post-failover plan; on shared plans only the
// first arrival mutates (see Plan.foRound).
func maybeFailover(c *mpi.Comm, sched *faults.Schedule, plan *Plan, r int) []FoEvent {
	if sched == nil || len(plan.Domains) == 0 {
		return nil
	}
	if plan.foRound > r {
		return plan.foLast
	}
	plan.foRound = r + 1
	down := func(d *Domain) (dead, byNode bool) {
		node := c.NodeOf(d.Agg)
		if sched.NodeFailedBy(node, r) {
			return true, true
		}
		if plan.MemMin > 0 && d.NodeAvail > 0 &&
			d.NodeAvail-sched.PressureBy(node, r) < plan.MemMin {
			return true, false
		}
		return false, false
	}
	plan.foLast = applyFailover(plan, r, down)
	return plan.foLast
}

// applyFailover evaluates the down predicate for every domain and
// remerges the failed ones into takers. Factored from maybeFailover so
// the mutation logic is unit-testable without a communicator.
func applyFailover(plan *Plan, r int, down func(d *Domain) (dead, byNode bool)) []FoEvent {
	n := len(plan.Domains)
	alive := make([]bool, n)
	byNode := make([]bool, n)
	var failed []int
	for i := range plan.Domains {
		d := &plan.Domains[i]
		dead, cause := down(d)
		alive[i] = !dead
		byNode[i] = cause
		if dead && len(d.Windows) > r {
			failed = append(failed, i)
		}
	}
	if len(failed) == 0 {
		return nil
	}
	var evs []FoEvent
	for _, fi := range failed {
		ti := pickTakeover(plan, fi, alive)
		ev := FoEvent{Round: r, Failed: fi, Taker: ti, ByNodeFailure: byNode[fi]}
		if ti < 0 {
			// No survivor anywhere: the domain keeps serving on its
			// failed aggregator — degraded, but no data is lost.
			evs = append(evs, ev)
			continue
		}
		f := &plan.Domains[fi]
		tk := &plan.Domains[ti]
		absorbed := f.Windows[r:]
		for _, w := range absorbed {
			ev.Bytes += w.Len
		}
		// The absorbed windows must land at round indices >= r so they
		// play after the takeover; pad the survivor's schedule with
		// inert zero-length windows if it is already past r.
		for len(tk.Windows) < r {
			tk.Windows = append(tk.Windows, datatype.Segment{Off: tk.Hi, Len: 0})
		}
		tk.Windows = append(tk.Windows, absorbed...)
		if f.Lo < tk.Lo {
			tk.Lo = f.Lo
		}
		if f.Hi > tk.Hi {
			tk.Hi = f.Hi
		}
		// Tombstone the failed domain: truncate its schedule at the
		// failed round and collapse its extent so the re-exchange routes
		// no requests to it. The slot stays so domain indices (Sibling,
		// aggState) remain valid.
		f.Windows = f.Windows[:r]
		f.Hi = f.Lo
		evs = append(evs, ev)
	}
	plan.Rounds = plan.maxRounds()
	if plan.Rounds < r {
		plan.Rounds = r
	}
	return evs
}

// pickTakeover chooses the surviving domain that absorbs fi: the
// planner-designated sibling when alive, else the nearest surviving
// domain by index (file order), lower index on ties.
func pickTakeover(plan *Plan, fi int, alive []bool) int {
	if s := plan.Domains[fi].Sibling; s >= 0 && s < len(plan.Domains) && s != fi && alive[s] {
		return s
	}
	for dist := 1; dist < len(plan.Domains); dist++ {
		if i := fi - dist; i >= 0 && alive[i] {
			return i
		}
		if i := fi + dist; i < len(plan.Domains) && alive[i] {
			return i
		}
	}
	return -1
}

// recordFailovers attributes a check's events to the calling rank:
// exactly one rank (the taker's aggregator, or the failed aggregator
// for unrecovered domains) records each event's metrics and trace
// instants, so shared-plan and per-rank-plan strategies account alike.
func recordFailovers(c *mpi.Comm, sched *faults.Schedule, plan *Plan, evs []FoEvent, m *trace.Metrics, loc obs.Loc) {
	for _, ev := range evs {
		if ev.Taker < 0 {
			if plan.Domains[ev.Failed].Agg == c.Rank() {
				sched.RecordUnrecovered(loc, ev.Failed)
			}
			continue
		}
		if plan.Domains[ev.Taker].Agg == c.Rank() {
			sched.RecordFailover(loc, ev.ByNodeFailure, ev.Bytes, ev.Failed)
			m.AddRemerge()
		}
	}
}

// injectRoundFaults runs the per-round fault hooks after the entry
// barrier: ledger pressure application and the failover check. It
// returns true when the plan changed and the caller must redo the
// request exchange. Callers guard with sched != nil so the fault-free
// path stays allocation-free.
func injectRoundFaults(c *mpi.Comm, sched *faults.Schedule, plan *Plan, r int, m *trace.Metrics, loc obs.Loc) bool {
	sched.ApplyPressure(r, func(node int, bytes int64) {
		c.World().Machine().Node(node).InjectPressure(bytes)
	})
	evs := maybeFailover(c, sched, plan, r)
	if len(evs) == 0 {
		return false
	}
	recordFailovers(c, sched, plan, evs, m, loc)
	return true
}

// LeaderFoEvent records one leadership-handoff decision of a round's
// leader check (two-layer plans only).
type LeaderFoEvent struct {
	Round  int
	Node   int // comm node of the failed leader
	Failed int // comm rank of the failed leader
	Taker  int // successor comm rank; -1 when no survivor exists on the node
}

// maybeLeaderFailover runs the round-r leadership check for plans with
// an elected leader map: a leader whose world rank is failed by this
// round hands its role — the intra-node funnel plus any file domain it
// aggregates — to the next surviving rank in its node's election
// order. Like maybeFailover the decision is a pure function of
// (schedule, plan, round), guarded by Plan.lfRound so shared plans
// mutate once; non-empty events mean the caller must redo the request
// exchange and rebuild its combine state.
func maybeLeaderFailover(c *mpi.Comm, sched *faults.Schedule, plan *Plan, r int) []LeaderFoEvent {
	if sched == nil || plan.LeaderOf == nil {
		return nil
	}
	if plan.lfRound > r {
		return plan.lfLast
	}
	plan.lfRound = r + 1
	var evs []LeaderFoEvent
	for rank := 0; rank < len(plan.LeaderOf); rank++ {
		l := plan.LeaderOf[rank]
		if l != rank || !sched.RankFailedBy(c.WorldRank(l), r) {
			// Only current leaders (fixed points of the map) are checked;
			// a demoted ex-leader's failure is old news.
			continue
		}
		taker := -1
		if plan.LeaderSucc != nil {
			for _, s := range plan.LeaderSucc[l] {
				if s != l && !sched.RankFailedBy(c.WorldRank(s), r) {
					taker = s
					break
				}
			}
		}
		evs = append(evs, LeaderFoEvent{Round: r, Node: c.NodeOf(l), Failed: l, Taker: taker})
		if taker < 0 {
			// Single-rank node or every mate failed too: the leader keeps
			// serving degraded — the role has nowhere to go, data still flows.
			continue
		}
		for x := range plan.LeaderOf {
			if plan.LeaderOf[x] == l {
				plan.LeaderOf[x] = taker
			}
		}
		// A file domain the failed leader aggregated moves to the first
		// successor that owns none (one domain per aggregator is an engine
		// invariant) — same node either way, so the charged buffer and
		// NodeAvail snapshot remain valid. With no free survivor the
		// domain stays with the failed rank: degraded, nothing lost.
		owned := make(map[int]bool, len(plan.Domains))
		for di := range plan.Domains {
			if a := plan.Domains[di].Agg; a != l {
				owned[a] = true
			}
		}
		domTaker := -1
		if plan.LeaderSucc != nil {
			for _, s := range plan.LeaderSucc[l] {
				if s != l && !owned[s] && !sched.RankFailedBy(c.WorldRank(s), r) {
					domTaker = s
					break
				}
			}
		}
		if domTaker >= 0 {
			for di := range plan.Domains {
				if plan.Domains[di].Agg == l {
					plan.Domains[di].Agg = domTaker
				}
			}
		}
	}
	plan.lfLast = evs
	return evs
}

// recordLeaderFailovers attributes a leader check's events: the taker
// rank records recovered handoffs, the failed leader records
// unrecoverable ones — exactly one recorder per event.
func recordLeaderFailovers(c *mpi.Comm, sched *faults.Schedule, evs []LeaderFoEvent, loc obs.Loc) {
	for _, ev := range evs {
		if ev.Taker < 0 {
			if ev.Failed == c.Rank() {
				sched.RecordUnrecovered(loc, -1)
			}
			continue
		}
		if ev.Taker == c.Rank() {
			sched.RecordLeaderFailover(loc, c.WorldRank(ev.Failed), c.WorldRank(ev.Taker))
		}
	}
}

// dropPenalty models this rank's retransmissions for a round's shuffle
// exchange: a deterministic per-(group,round,rank) draw decides how
// many sends were dropped, and the rank sits out the capped
// exponential-backoff penalty in virtual time. Retry exhaustion still
// delivers, so the collective always completes.
func dropPenalty(c *mpi.Comm, sched *faults.Schedule, plan *Plan, r int, loc obs.Loc) {
	drops := sched.ExchangeDrops(plan.Group, r, c.WorldRank(c.Rank()))
	if drops == 0 {
		return
	}
	pen := sched.RetryPenalty(drops)
	sched.RecordDrops(loc, drops, pen)
	c.Proc().Sleep(pen)
}
