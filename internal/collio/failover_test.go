package collio

import (
	"reflect"
	"testing"

	"repro/internal/datatype"
)

// failPlan builds a three-domain plan with two windows each, the shape
// the failover tests carve up.
func failPlan() *Plan {
	mk := func(agg int, lo int64) Domain {
		return Domain{
			Agg: agg, Lo: lo, Hi: lo + 200, BufBytes: 100, Sibling: -1,
			Windows: []datatype.Segment{{Off: lo, Len: 100}, {Off: lo + 100, Len: 100}},
		}
	}
	p := &Plan{Domains: []Domain{mk(0, 0), mk(1, 200), mk(2, 400)}}
	p.Rounds = p.maxRounds()
	return p
}

func killOnly(idx int) func(d *Domain) (bool, bool) {
	return func(d *Domain) (bool, bool) { return d.Agg == idx, true }
}

func TestApplyFailoverRemerge(t *testing.T) {
	p := failPlan()
	p.Domains[0].Sibling = 1
	evs := applyFailover(p, 1, killOnly(0))
	if len(evs) != 1 {
		t.Fatalf("events = %+v, want 1", evs)
	}
	ev := evs[0]
	if ev.Failed != 0 || ev.Taker != 1 || ev.Round != 1 || !ev.ByNodeFailure || ev.Bytes != 100 {
		t.Errorf("event %+v, want failed=0 taker=1 round=1 byNode bytes=100", ev)
	}
	f, tk := &p.Domains[0], &p.Domains[1]
	// Tombstone: schedule truncated at the failed round, extent collapsed.
	if len(f.Windows) != 1 || f.Hi != f.Lo {
		t.Errorf("failed domain not tombstoned: windows=%v extent=[%d,%d)", f.Windows, f.Lo, f.Hi)
	}
	// Taker: own round-0/1 windows, then the absorbed round-1 window.
	want := []datatype.Segment{{Off: 200, Len: 100}, {Off: 300, Len: 100}, {Off: 100, Len: 100}}
	if !reflect.DeepEqual(tk.Windows, want) {
		t.Errorf("taker windows = %v, want %v", tk.Windows, want)
	}
	if tk.Lo != 0 || tk.Hi != 400 {
		t.Errorf("taker extent = [%d,%d), want union [0,400)", tk.Lo, tk.Hi)
	}
	if p.Rounds != 3 {
		t.Errorf("rounds = %d, want 3 (taker grew a round)", p.Rounds)
	}
}

// TestApplyFailoverPadding: a taker already finished with its own
// schedule gets inert zero-length windows up to the failed round, so
// the absorbed windows keep their round indices.
func TestApplyFailoverPadding(t *testing.T) {
	p := failPlan()
	p.Domains[1].Windows = p.Domains[1].Windows[:1] // taker has 1 round only
	p.Domains[0].Sibling = 1
	evs := applyFailover(p, 1, killOnly(0))
	if len(evs) != 1 || evs[0].Taker != 1 {
		t.Fatalf("events = %+v", evs)
	}
	tk := p.Domains[1]
	if len(tk.Windows) != 2 {
		t.Fatalf("taker windows = %v, want 2 (1 own + 1 absorbed)", tk.Windows)
	}
	if tk.Windows[1].Len != 100 || tk.Windows[1].Off != 100 {
		t.Errorf("absorbed window landed wrong: %v", tk.Windows)
	}

	// Same shape but failing at round 2: the taker needs a zero-length
	// pad at index 1 before the (empty) absorption point.
	p2 := failPlan()
	p2.Domains[0].Windows = append(p2.Domains[0].Windows, datatype.Segment{Off: 250, Len: 50})
	p2.Domains[0].Hi = 300
	p2.Domains[1].Windows = p2.Domains[1].Windows[:1]
	p2.Domains[0].Sibling = 1
	evs = applyFailover(p2, 2, killOnly(0))
	if len(evs) != 1 {
		t.Fatalf("events = %+v", evs)
	}
	tk2 := p2.Domains[1]
	if len(tk2.Windows) != 3 {
		t.Fatalf("taker windows = %v, want 3 (own, pad, absorbed)", tk2.Windows)
	}
	if tk2.Windows[1].Len != 0 {
		t.Errorf("pad window not zero-length: %v", tk2.Windows[1])
	}
	if tk2.Windows[2].Len != 50 {
		t.Errorf("absorbed window = %v, want the round-2 remainder", tk2.Windows[2])
	}
}

func TestApplyFailoverSiblingPreference(t *testing.T) {
	p := failPlan()
	p.Domains[0].Sibling = 2 // planner says 2, even though 1 is nearer
	evs := applyFailover(p, 0, killOnly(0))
	if evs[0].Taker != 2 {
		t.Errorf("taker = %d, want the designated sibling 2", evs[0].Taker)
	}

	// Dead sibling: fall back to the nearest survivor.
	p = failPlan()
	p.Domains[0].Sibling = 1
	dead := func(d *Domain) (bool, bool) { return d.Agg == 0 || d.Agg == 1, true }
	evs = applyFailover(p, 0, dead)
	for _, ev := range evs {
		if ev.Failed == 0 && ev.Taker != 2 {
			t.Errorf("taker = %d, want fallback survivor 2", ev.Taker)
		}
	}
}

// TestApplyFailoverNoSurvivor: every aggregator lost. The domains keep
// their schedules (degraded service on the failed nodes — no data can
// move anywhere) and each failure is reported with Taker -1.
func TestApplyFailoverNoSurvivor(t *testing.T) {
	p := failPlan()
	before := append([]Domain(nil), p.Domains...)
	evs := applyFailover(p, 0, func(d *Domain) (bool, bool) { return true, true })
	if len(evs) != 3 {
		t.Fatalf("events = %+v, want 3", evs)
	}
	for _, ev := range evs {
		if ev.Taker != -1 {
			t.Errorf("event %+v: want Taker -1", ev)
		}
	}
	for i := range before {
		if !reflect.DeepEqual(before[i].Windows, p.Domains[i].Windows) {
			t.Errorf("domain %d mutated with no survivor: %v", i, p.Domains[i].Windows)
		}
	}
}

// TestApplyFailoverPastSchedule: a dead aggregator whose domain already
// finished its windows needs no remerge.
func TestApplyFailoverPastSchedule(t *testing.T) {
	p := failPlan()
	if evs := applyFailover(p, 2, killOnly(0)); evs != nil {
		t.Errorf("events = %+v, want none (schedule exhausted at round 2)", evs)
	}
}

// TestApplyFailoverDeterministic: identical plans and predicates yield
// deep-equal mutations and event lists — the property that lets every
// rank run the check independently on its plan copy.
func TestApplyFailoverDeterministic(t *testing.T) {
	mk := func() *Plan {
		p := failPlan()
		p.Domains[0].Sibling = 1
		return p
	}
	a, b := mk(), mk()
	ea := applyFailover(a, 1, killOnly(0))
	eb := applyFailover(b, 1, killOnly(0))
	if !reflect.DeepEqual(ea, eb) {
		t.Errorf("events differ: %+v vs %+v", ea, eb)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("plans diverged:\n%+v\n%+v", a, b)
	}
}
