package collio

import (
	"testing"
	"testing/quick"

	"repro/internal/buffer"
	"repro/internal/cluster"
	"repro/internal/datatype"
	"repro/internal/iolib"
	"repro/internal/mpi"
	"repro/internal/pfs"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/trace"
)

func testRig(t *testing.T, nodes, cores int, memPerNode int64) (*simtime.Engine, *cluster.Machine, *pfs.FS) {
	t.Helper()
	e := simtime.NewEngine()
	m, err := cluster.New(cluster.Config{
		Nodes: nodes, CoresPerNode: cores,
		MemPerNode: memPerNode,
		MemBusBW:   1e10, MemBusLat: 1e-7,
		NICBW: 1e9, NICLat: 1e-6,
		BisectionBW: float64(nodes) * 5e8, BisectionLat: 1e-6,
		IONetBW: 2e9, IONetLat: 1e-5,
	})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := pfs.New(pfs.Config{OSTs: 4, StripeUnit: 1 << 20, OSTBW: 5e8, OSTLatency: 5e-4}, m)
	if err != nil {
		t.Fatal(err)
	}
	return e, m, fs
}

// fillViewBuffer mirrors the iolib test helper: pattern keyed by file offset.
func fillViewBuffer(view datatype.List, tag uint64) buffer.Buf {
	buf := buffer.NewReal(view.TotalBytes())
	var pos int64
	for _, s := range view {
		buf.Slice(pos, s.Len).Fill(tag, s.Off)
		pos += s.Len
	}
	return buf
}

// interleavedView gives rank r blocks r, r+p, r+2p... of blockLen bytes.
func interleavedView(rank, nprocs int, blocks int, blockLen int64) datatype.List {
	v := datatype.Vector{Count: int64(blocks), BlockLen: blockLen, Stride: blockLen * int64(nprocs)}
	return datatype.Normalize(v.Segments(nil, int64(rank)*blockLen))
}

func TestOffsetWindows(t *testing.T) {
	w := OffsetWindows(10, 45, 10)
	want := []datatype.Segment{{Off: 10, Len: 10}, {Off: 20, Len: 10}, {Off: 30, Len: 10}, {Off: 40, Len: 5}}
	if len(w) != len(want) {
		t.Fatalf("windows %v", w)
	}
	for i := range w {
		if w[i] != want[i] {
			t.Fatalf("windows %v, want %v", w, want)
		}
	}
	if w := OffsetWindows(5, 5, 10); len(w) != 0 {
		t.Fatalf("empty range gave %v", w)
	}
}

func TestCoverageWindowsAdvanceByData(t *testing.T) {
	cov := datatype.List{{Off: 0, Len: 10}, {Off: 100, Len: 10}, {Off: 200, Len: 10}}
	w := CoverageWindows(cov, 15)
	// First window: 10 bytes at [0,10) + 5 bytes at [100,105) => extent [0,105).
	want := []datatype.Segment{{Off: 0, Len: 105}, {Off: 105, Len: 105}}
	if len(w) != 2 || w[0] != want[0] || w[1] != want[1] {
		t.Fatalf("windows %v, want %v", w, want)
	}
}

func TestCoverageWindowsProperty(t *testing.T) {
	f := func(seed uint64, bufRaw uint16) bool {
		r := stats.NewRNG(seed)
		raw := make([]datatype.Segment, 1+r.Intn(25))
		for i := range raw {
			raw[i] = datatype.Segment{Off: r.Int63n(5000), Len: 1 + r.Int63n(300)}
		}
		cov := datatype.Normalize(raw)
		buf := int64(bufRaw%2048) + 1
		ws := CoverageWindows(cov, buf)
		var covered int64
		prev := int64(-1 << 62)
		for _, w := range ws {
			if w.Len <= 0 || w.Off < prev {
				return false // disordered or empty window
			}
			prev = w.End()
			data := cov.Clip(w.Off, w.End()).TotalBytes()
			if data == 0 || data > buf {
				return false // window data outside (0, buf]
			}
			covered += data
		}
		return covered == cov.TotalBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanValidate(t *testing.T) {
	good := &Plan{
		Domains: []Domain{{Agg: 0, Lo: 0, Hi: 100, BufBytes: 10, Windows: OffsetWindows(0, 100, 10)}},
		Exts:    make([]Ext, 2),
	}
	if err := good.Validate(2); err != nil {
		t.Fatalf("good plan rejected: %v", err)
	}
	bad := []*Plan{
		{Domains: []Domain{{Agg: 5}}, Exts: make([]Ext, 2)},
		{Domains: []Domain{{Agg: 0, Lo: 0, Hi: 10, BufBytes: 4, Windows: OffsetWindows(0, 10, 4)}, {Agg: 0, Lo: 10, Hi: 20, BufBytes: 4, Windows: OffsetWindows(10, 20, 4)}}, Exts: make([]Ext, 2)},
		{Domains: []Domain{{Agg: 0, Lo: 10, Hi: 5}}, Exts: make([]Ext, 2)},
		{Domains: []Domain{{Agg: 0, Lo: 0, Hi: 10, BufBytes: 4, Windows: []datatype.Segment{{Off: 0, Len: 20}}}}, Exts: make([]Ext, 2)},
		{Exts: make([]Ext, 1)},
	}
	for i, p := range bad {
		if err := p.Validate(2); err == nil {
			t.Errorf("bad plan %d accepted", i)
		}
	}
}

// runCollective drives nprocs ranks through one write+readback cycle
// with the given strategy and returns rank 0's write result.
func runCollective(t *testing.T, s iolib.Collective, nodes, cores, nprocs, blocks int, blockLen int64) trace.Result {
	t.Helper()
	e, m, fs := testRig(t, nodes, cores, 64*cluster.MiB)
	w, err := mpi.NewWorld(e, m, nprocs)
	if err != nil {
		t.Fatal(err)
	}
	f := iolib.Open(fs, "shared")
	var res trace.Result
	w.Start(func(c *mpi.Comm) {
		view := interleavedView(c.Rank(), nprocs, blocks, blockLen)
		data := fillViewBuffer(view, uint64(c.Rank()))
		r := iolib.Run(s, "write", f, c, view, data, &trace.Metrics{})
		if c.Rank() == 0 {
			res = r
		}
		dst := buffer.NewReal(view.TotalBytes())
		iolib.Run(s, "read", f, c, view, dst, &trace.Metrics{})
		var pos int64
		for _, seg := range view {
			if i := dst.Slice(pos, seg.Len).Verify(uint64(c.Rank()), seg.Off); i != -1 {
				t.Errorf("rank %d segment %v mismatch at %d", c.Rank(), seg, i)
			}
			pos += seg.Len
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTwoPhaseWriteReadRoundTrip(t *testing.T) {
	res := runCollective(t, TwoPhase{CBBuffer: 256 << 10}, 2, 3, 6, 16, 4<<10)
	if res.Bytes != 6*16*4<<10 {
		t.Fatalf("bytes %d", res.Bytes)
	}
	if res.Aggregators != 2 {
		t.Fatalf("aggregators %d, want 2 (one per node)", res.Aggregators)
	}
	if res.Rounds < 1 {
		t.Fatalf("rounds %d", res.Rounds)
	}
}

func TestTwoPhaseSmallBufferMeansMoreRounds(t *testing.T) {
	big := runCollective(t, TwoPhase{CBBuffer: 1 << 20}, 2, 2, 4, 16, 4<<10)
	small := runCollective(t, TwoPhase{CBBuffer: 32 << 10}, 2, 2, 4, 16, 4<<10)
	if small.Rounds <= big.Rounds {
		t.Fatalf("rounds small=%d big=%d; smaller buffer must need more rounds", small.Rounds, big.Rounds)
	}
	if small.BandwidthMBps() >= big.BandwidthMBps() {
		t.Fatalf("bandwidth small=%.1f big=%.1f; more rounds must cost bandwidth", small.BandwidthMBps(), big.BandwidthMBps())
	}
}

func TestTwoPhaseBeatsIndependentOnInterleaved(t *testing.T) {
	tp := runCollective(t, TwoPhase{CBBuffer: 1 << 20}, 2, 4, 8, 32, 1<<10)
	ind := runCollective(t, iolib.Naive{Opts: iolib.SieveOptions{}}, 2, 4, 8, 32, 1<<10)
	if tp.BandwidthMBps() <= ind.BandwidthMBps() {
		t.Fatalf("two-phase %.1f MB/s not better than independent %.1f MB/s on interleaved pattern",
			tp.BandwidthMBps(), ind.BandwidthMBps())
	}
}

func TestTwoPhaseWriteWithHolesPreservesSurroundings(t *testing.T) {
	e, m, fs := testRig(t, 2, 2, 64*cluster.MiB)
	w, err := mpi.NewWorld(e, m, 4)
	if err != nil {
		t.Fatal(err)
	}
	f := iolib.Open(fs, "shared")
	const fileSize = 64 << 10
	w.Start(func(c *mpi.Comm) {
		// Rank 0 pre-writes the whole file independently.
		if c.Rank() == 0 {
			base := buffer.NewReal(fileSize)
			base.Fill(99, 0)
			f.WriteAt(c.Proc(), 0, 0, base)
		}
		c.Barrier()
		// Collective write touches every second 512-byte block only.
		view := interleavedView(c.Rank(), 8, 8, 512) // ranks 0..3 of an 8-wide stride: holes remain
		data := fillViewBuffer(view, uint64(c.Rank()))
		iolib.Run(TwoPhase{CBBuffer: 4 << 10}, "write", f, c, view, data, &trace.Metrics{})
		c.Barrier()
		if c.Rank() == 0 {
			out := buffer.NewReal(fileSize)
			f.ReadAt(c.Proc(), 0, 0, out)
			// Within the written extent (blocks 0..63), blocks belonging
			// to ranks 0..3 carry their tags; stride positions 4..7 and
			// everything past the extent keep the pre-image.
			for blk := int64(0); blk < fileSize/512; blk++ {
				ownerSlot := blk % 8
				got := out.Slice(blk*512, 512)
				if ownerSlot < 4 && blk < 64 {
					if i := got.Verify(uint64(ownerSlot), blk*512); i != -1 {
						t.Errorf("block %d (rank %d) mismatch at %d", blk, ownerSlot, i)
					}
				} else {
					if i := got.Verify(99, blk*512); i != -1 {
						t.Errorf("block %d pre-image clobbered at %d", blk, i)
					}
				}
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTwoPhaseEffectiveBufferCappedByNodeMemory(t *testing.T) {
	// Node memory of 1 MiB cannot host a 64 MiB collective buffer.
	e, m, fs := testRig(t, 2, 2, 1*cluster.MiB)
	w, err := mpi.NewWorld(e, m, 4)
	if err != nil {
		t.Fatal(err)
	}
	f := iolib.Open(fs, "shared")
	var res trace.Result
	w.Start(func(c *mpi.Comm) {
		view := interleavedView(c.Rank(), 4, 8, 4<<10)
		data := buffer.NewPhantom(view.TotalBytes())
		r := iolib.Run(TwoPhase{CBBuffer: 64 << 20}, "write", f, c, view, data, &trace.Metrics{})
		if c.Rank() == 0 {
			res = r
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for _, b := range res.AggBufferBytes {
		if b > 1*cluster.MiB {
			t.Fatalf("aggregator buffer %d exceeds node capacity", b)
		}
	}
	for _, hw := range m.MemHighWaters() {
		if hw > 1*cluster.MiB {
			t.Fatalf("ledger high water %d exceeds capacity", hw)
		}
	}
}

func TestTwoPhaseEmptyViewsEverywhere(t *testing.T) {
	e, m, fs := testRig(t, 1, 4, 64*cluster.MiB)
	w, err := mpi.NewWorld(e, m, 4)
	if err != nil {
		t.Fatal(err)
	}
	f := iolib.Open(fs, "shared")
	w.Start(func(c *mpi.Comm) {
		iolib.Run(TwoPhase{CBBuffer: 1 << 20}, "write", f, c, nil, buffer.NewPhantom(0), &trace.Metrics{})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTwoPhaseOneRankHasAllData(t *testing.T) {
	e, m, fs := testRig(t, 2, 2, 64*cluster.MiB)
	w, err := mpi.NewWorld(e, m, 4)
	if err != nil {
		t.Fatal(err)
	}
	f := iolib.Open(fs, "shared")
	w.Start(func(c *mpi.Comm) {
		var view datatype.List
		if c.Rank() == 2 {
			view = datatype.List{{Off: 0, Len: 256 << 10}}
		}
		var data buffer.Buf
		if len(view) > 0 {
			data = fillViewBuffer(view, 7)
		} else {
			data = buffer.NewReal(0)
		}
		iolib.Run(TwoPhase{CBBuffer: 64 << 10}, "write", f, c, view, data, &trace.Metrics{})
		c.Barrier()
		if c.Rank() == 0 {
			out := buffer.NewReal(256 << 10)
			f.ReadAt(c.Proc(), 0, 0, out)
			if i := out.Verify(7, 0); i != -1 {
				t.Errorf("mismatch at %d", i)
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTwoPhaseShuffleTrafficAccounted(t *testing.T) {
	res := runCollective(t, TwoPhase{CBBuffer: 1 << 20}, 2, 2, 4, 16, 4<<10)
	if res.BytesShuffleIntra+res.BytesShuffleInter == 0 {
		t.Fatal("no shuffle traffic recorded")
	}
	if res.BytesIO == 0 || res.IORequests == 0 {
		t.Fatal("no I/O recorded")
	}
}

func TestExecutePanicsOnInvalidPlan(t *testing.T) {
	e, m, fs := testRig(t, 1, 2, 64*cluster.MiB)
	w, err := mpi.NewWorld(e, m, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := iolib.Open(fs, "x")
	w.Start(func(c *mpi.Comm) {
		defer func() {
			if recover() == nil {
				t.Error("invalid plan did not panic")
			}
		}()
		bad := &Plan{Domains: []Domain{{Agg: 9}}, Exts: make([]Ext, 2)}
		ExecuteWrite(f, c, iolib.NewViewIndex(nil), buffer.NewPhantom(0), bad, nil)
	})
	_ = e.Run()
}

func TestEmptyPlanIsNoop(t *testing.T) {
	e, m, fs := testRig(t, 1, 2, 64*cluster.MiB)
	w, err := mpi.NewWorld(e, m, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := iolib.Open(fs, "x")
	w.Start(func(c *mpi.Comm) {
		plan := &Plan{Exts: make([]Ext, 2)}
		var mtr trace.Metrics
		ExecuteWrite(f, c, iolib.NewViewIndex(nil), buffer.NewPhantom(0), plan, &mtr)
		ExecuteRead(f, c, iolib.NewViewIndex(nil), buffer.NewPhantom(0), plan, &mtr)
		if mtr.Rounds != 0 || mtr.BytesIO != 0 {
			t.Errorf("empty plan moved data: %+v", mtr)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAggregatorWithoutOwnDataStillServes(t *testing.T) {
	// Rank 0 (the aggregator under one-per-node) has no data of its
	// own; ranks 1..3 write through it.
	e, m, fs := testRig(t, 1, 4, 64*cluster.MiB)
	w, err := mpi.NewWorld(e, m, 4)
	if err != nil {
		t.Fatal(err)
	}
	f := iolib.Open(fs, "x")
	w.Start(func(c *mpi.Comm) {
		var view datatype.List
		if c.Rank() > 0 {
			view = datatype.List{{Off: int64(c.Rank()-1) * 4096, Len: 4096}}
		}
		data := fillViewBuffer(view, uint64(c.Rank()))
		iolib.Run(TwoPhase{CBBuffer: 1 << 20}, "write", f, c, view, data, &trace.Metrics{})
		c.Barrier()
		if c.Rank() == 0 {
			out := buffer.NewReal(3 * 4096)
			f.ReadAt(c.Proc(), 0, 0, out)
			for r := 1; r <= 3; r++ {
				if i := out.Slice(int64(r-1)*4096, 4096).Verify(uint64(r), int64(r-1)*4096); i != -1 {
					t.Errorf("rank %d region mismatch at %d", r, i)
				}
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTwoPhaseReadOfUnwrittenHolesYieldsZeros(t *testing.T) {
	e, m, fs := testRig(t, 1, 2, 64*cluster.MiB)
	w, err := mpi.NewWorld(e, m, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := iolib.Open(fs, "x")
	w.Start(func(c *mpi.Comm) {
		// Read a sparse view of a file nobody wrote.
		view := datatype.List{{Off: int64(c.Rank()) * 8192, Len: 1024}}
		dst := fillViewBuffer(view, 77) // junk that must be zeroed
		iolib.Run(TwoPhase{CBBuffer: 64 << 10}, "read", f, c, view, dst, &trace.Metrics{})
		for i, b := range dst.Bytes() {
			if b != 0 {
				t.Errorf("rank %d byte %d = %#x, want 0", c.Rank(), i, b)
				break
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAlignStripeDomains(t *testing.T) {
	e, m, fs := testRig(t, 3, 2, 64*cluster.MiB)
	w, err := mpi.NewWorld(e, m, 6)
	if err != nil {
		t.Fatal(err)
	}
	f := iolib.Open(fs, "x")
	const stripe = 1 << 20
	w.Start(func(c *mpi.Comm) {
		// ~2.4 MiB per rank: domain size is not naturally stripe-sized.
		view := interleavedView(c.Rank(), 6, 5, 512<<10)
		tp := TwoPhase{CBBuffer: 1 << 20, AlignStripe: stripe}
		plan := tp.BuildPlan(c, view)
		if c.Rank() == 0 {
			for i, d := range plan.Domains {
				if d.Lo%stripe != 0 {
					t.Errorf("domain %d starts at %d, not stripe-aligned", i, d.Lo)
				}
				_, gHi := view.Extent()
				_ = gHi
			}
		}
		// And the plan still works end to end.
		data := fillViewBuffer(view, uint64(c.Rank()))
		iolib.Run(tp, "write", f, c, view, data, &trace.Metrics{})
		dst := buffer.NewReal(view.TotalBytes())
		iolib.Run(tp, "read", f, c, view, dst, &trace.Metrics{})
		var pos int64
		for _, s := range view {
			if i := dst.Slice(pos, s.Len).Verify(uint64(c.Rank()), s.Off); i != -1 {
				t.Errorf("rank %d segment %v mismatch at %d", c.Rank(), s, i)
			}
			pos += s.Len
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
