package collio

import (
	"sort"

	"repro/internal/buffer"
	"repro/internal/datatype"
	"repro/internal/iolib"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Hierarchical (two-layer) exchange: the paper's abstract promises that
// memory-conscious collective I/O "coordinates I/O accesses in
// intra-node and inter-node layer". This file implements that layer
// split for the round engine: within each physical node, ranks first
// funnel their round pieces to a node leader over the memory bus; only
// leaders talk to aggregators across the fabric. Many small NIC
// messages become one combined message per (node, aggregator) pair per
// round, at the price of one extra intra-node hop.
//
// Matching stays deterministic on both sides:
//   - every non-leader sends its leader exactly one bundle per round
//     (possibly empty), so leaders never guess;
//   - aggregators expect traffic from the *leader* of any node that has
//     requests in the current window (computable from othersReq plus
//     the node map);
//   - on reads, leaders know what their mates expect because mates'
//     views are gathered once up front.

// nodeBundle is the per-round intra-node payload: one piece per domain
// the sender has data for.
type nodeBundle struct {
	pieces map[int]shufflePiece // domain index -> piece
}

func (nb nodeBundle) wireBytes() int64 {
	var n int64 = 8
	for _, p := range nb.pieces {
		n += p.wireBytes()
	}
	return n
}

// rankPiece is a read-path piece addressed to one rank.
type rankPiece struct {
	rank  int // comm rank the piece belongs to
	piece shufflePiece
}

// combineState holds the node topology for one collective. It is
// rebuilt after a leader failover changes the plan's leader map.
type combineState struct {
	leaderOf []int // comm rank -> leader comm rank
	mates    []int // my node's comm ranks (only filled for leaders)
	leaders  []int // distinct leaders in rank-of-first-member order
	amLeader bool
	merged   bool                  // elected-leader mode: merge/dedup pieces
	views    map[int]datatype.List // leader only: mate comm rank -> full view
}

// newCombineState derives the per-node leader topology: the plan's
// elected leader map when present (two-layer strategy), else the
// legacy lowest-rank-per-node choice.
func newCombineState(c *mpi.Comm, plan *Plan) *combineState {
	p := c.Size()
	cs := &combineState{leaderOf: make([]int, p)}
	if plan != nil && plan.LeaderOf != nil {
		cs.merged = true
		copy(cs.leaderOf, plan.LeaderOf)
		seen := make(map[int]bool, p)
		for r := 0; r < p; r++ {
			if l := cs.leaderOf[r]; !seen[l] {
				seen[l] = true
				cs.leaders = append(cs.leaders, l)
			}
		}
	} else {
		firstOnNode := make(map[int]int)
		for r := 0; r < p; r++ {
			node := c.NodeOf(r)
			if _, ok := firstOnNode[node]; !ok {
				firstOnNode[node] = r
				cs.leaders = append(cs.leaders, r)
			}
			cs.leaderOf[r] = firstOnNode[node]
		}
	}
	me := c.Rank()
	cs.amLeader = cs.leaderOf[me] == me
	if cs.amLeader {
		for r := 0; r < p; r++ {
			if cs.leaderOf[r] == me {
				cs.mates = append(cs.mates, r)
			}
		}
	}
	return cs
}

// gatherViews sends every non-leader's view to its leader so leaders
// can compute mate expectations (read path) — the intra-node layer of
// the upfront request exchange. Charged at segment-metadata size.
const viewTag = 1000 // user-tag space; distinct from bundle/piece tags

const bundleTag = 1001
const pieceTag = 1002

func (cs *combineState) gatherViews(c *mpi.Comm, vi *iolib.ViewIndex) {
	me := c.Rank()
	if !cs.amLeader {
		view := vi.View()
		c.SendVal(cs.leaderOf[me], viewTag, segsVal{view}, int64(len(view))*extBytes+8)
		return
	}
	cs.views = map[int]datatype.List{me: vi.View()}
	for _, mate := range cs.mates {
		if mate == me {
			continue
		}
		cs.views[mate] = c.RecvVal(mate, viewTag).(segsVal).segs
	}
}

// segsVal wraps a view for the intra-node metadata send.
type segsVal struct {
	segs datatype.List
}

// combinePieces concatenates several pieces into one (segment lists
// joined, payloads packed back to back). Segments from different ranks
// never overlap, so the aggregator's scatter handles the joined list
// without normalization.
func combinePieces(pieces []shufflePiece, phantom bool) shufflePiece {
	if len(pieces) == 1 {
		return pieces[0]
	}
	var segs datatype.List
	var total int64
	for _, p := range pieces {
		segs = append(segs, p.segs...)
		total += p.data.Len()
	}
	data := buffer.New(total, phantom)
	var pos int64
	for _, p := range pieces {
		buffer.Copy(data.Slice(pos, p.data.Len()), p.data)
		pos += p.data.Len()
	}
	return shufflePiece{segs: segs, data: data}
}

// mergePieces is the elected-leader variant of combinePieces: the
// node's segments are merge-sorted into file order with adjacent runs
// coalesced and the payload reordered to match, so the combined wire
// message carries one run's metadata where ranks on a node wrote
// interleaved neighbours — Kang et al.'s node-level request merging.
// Disjointness across ranks (the collective-write contract) makes the
// sort a pure reordering.
func mergePieces(pieces []shufflePiece, phantom bool) shufflePiece {
	if len(pieces) == 1 {
		return pieces[0]
	}
	type segSrc struct {
		seg   datatype.Segment
		piece int
		pos   int64 // byte offset of seg's payload inside its piece
	}
	var srcs []segSrc
	var total int64
	for pi := range pieces {
		var pos int64
		for _, s := range pieces[pi].segs {
			srcs = append(srcs, segSrc{seg: s, piece: pi, pos: pos})
			pos += s.Len
		}
		total += pieces[pi].data.Len()
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i].seg.Off < srcs[j].seg.Off })
	data := buffer.New(total, phantom)
	var segs datatype.List
	var pos int64
	for _, s := range srcs {
		buffer.Copy(data.Slice(pos, s.seg.Len), pieces[s.piece].data.Slice(s.pos, s.seg.Len))
		pos += s.seg.Len
		if n := len(segs); n > 0 && segs[n-1].End() == s.seg.Off {
			segs[n-1].Len += s.seg.Len
		} else {
			segs = append(segs, s.seg)
		}
	}
	return shufflePiece{segs: segs, data: data}
}

// windowOfAgg returns the round-r window of the domain aggregated by
// comm rank agg. ok is false when agg owns no domain or its schedule
// ended before r — unreachable for a piece actually received from agg,
// since failover checks run before the exchange at every round.
func windowOfAgg(plan *Plan, agg, r int) (datatype.Segment, bool) {
	for _, d := range plan.Domains {
		if d.Agg == agg {
			if r < len(d.Windows) {
				return d.Windows[r], true
			}
			return datatype.Segment{}, false
		}
	}
	return datatype.Segment{}, false
}

// executeWriteCombined is ExecuteWrite with the two-layer exchange.
func executeWriteCombined(f *iolib.File, c *mpi.Comm, vi *iolib.ViewIndex, data buffer.Buf, plan *Plan, m *trace.Metrics) {
	p := c.Size()
	me := c.Rank()
	t := c.Tracer()
	em := newEngineMetrics(c, "write")
	sched := c.Faults()
	loc := traceLoc(c, plan)
	sp := t.Begin(obs.PhaseReqExchange, loc)
	mine := exchangeRequests(c, vi, plan)
	sp.End()
	if mine != nil {
		m.AddAggregator(mine.domain.BufBytes)
	}
	cs := newCombineState(c, plan)
	phantom := data.Phantom()

	vals := make([]any, p)
	bytes := make([]int64, p)
	present := make([]bool, p)

	for r := 0; r < plan.Rounds; r++ {
		rloc := loc
		rloc.Round = r
		sp = t.Begin(obs.PhaseBarrier, rloc)
		c.Barrier()
		sp.End()
		if mine != nil {
			sampleMem(c, r)
		}
		if sched != nil {
			changed := injectRoundFaults(c, sched, plan, r, m, rloc)
			if lf := maybeLeaderFailover(c, sched, plan, r); len(lf) > 0 {
				recordLeaderFailovers(c, sched, lf, rloc)
				changed = true
			}
			if changed {
				// Remerge or leadership handoff changed routing: redo the
				// request exchange and rebuild the node topology. Collective —
				// every rank takes this branch for the same rounds.
				mine = exchangeRequests(c, vi, plan)
				cs = newCombineState(c, plan)
			}
		}
		clearScratch(vals, bytes, present)

		// Intra-node layer: pack my pieces and hand them to my leader.
		myBundle := nodeBundle{pieces: make(map[int]shufflePiece, len(plan.Domains))}
		var packedIntra int64
		sp = t.Begin(obs.PhasePack, rloc)
		for di, d := range plan.Domains {
			if r >= len(d.Windows) {
				continue
			}
			w := d.Windows[r]
			segs, packed := vi.Pack(data, w.Off, w.End())
			if len(segs) == 0 {
				continue
			}
			myBundle.pieces[di] = shufflePiece{segs: segs, data: packed}
			packedIntra += packed.Len()
		}
		sp.EndBytes(packedIntra, 0)
		byDomain := make(map[int][]shufflePiece)
		sp = t.Begin(obs.PhaseIntra, rloc)
		if cs.amLeader {
			for di := range plan.Domains {
				if piece, ok := myBundle.pieces[di]; ok {
					byDomain[di] = append(byDomain[di], piece)
				}
			}
			for _, mate := range cs.mates {
				if mate == me {
					continue
				}
				nb := c.RecvVal(mate, bundleTag).(nodeBundle)
				for di, piece := range nb.pieces {
					byDomain[di] = append(byDomain[di], piece)
				}
			}
		} else {
			c.SendVal(cs.leaderOf[me], bundleTag, myBundle, myBundle.wireBytes())
			m.AddExchange(packedIntra, 0, 0)
			em.shuffle(packedIntra, 0)
		}
		sp.EndBytes(packedIntra, 0)

		// Inter-node layer: leaders ship one combined piece per domain.
		// Elected-leader plans merge the node's segments into file order
		// (coalescing adjacent runs from different mates) and pay the
		// reorder pass on the node's memory bus; legacy plans concatenate.
		var sentIntra, sentInter int64
		if cs.amLeader {
			for di := range plan.Domains {
				pieces, ok := byDomain[di]
				if !ok {
					continue
				}
				d := plan.Domains[di]
				var combined shufflePiece
				if cs.merged {
					combined = mergePieces(pieces, phantom)
					if len(pieces) > 1 {
						chargeAssembly(c, combined.data.Len())
					}
				} else {
					combined = combinePieces(pieces, phantom)
				}
				vals[d.Agg] = combined
				bytes[d.Agg] = combined.wireBytes()
				i, x := localityOf(c, me, d.Agg, combined.data.Len())
				sentIntra += i
				sentInter += x
			}
		}
		// Aggregator expectation: the leader of any node whose ranks
		// request inside my window.
		if mine != nil && r < len(mine.domain.Windows) {
			w := mine.domain.Windows[r]
			for src, segs := range mine.othersReq {
				if len(segs.Clip(w.Off, w.End())) > 0 {
					present[cs.leaderOf[src]] = true
				}
			}
		}

		tExch := c.Now()
		sp = t.Begin(obs.PhaseExchange, rloc)
		out := c.AlltoallSparse(vals, bytes, present)
		sp.EndBytes(sentIntra+sentInter, 0)
		m.AddExchange(sentIntra, sentInter, c.Now()-tExch)
		em.shuffle(sentIntra, sentInter)
		em.exchangeSeconds.Add(c.Now() - tExch)
		if sched != nil {
			dropPenalty(c, sched, plan, r, rloc)
		}

		if mine != nil && r < len(mine.domain.Windows) {
			w := mine.domain.Windows[r]
			cov := mine.coverage.Clip(w.Off, w.End())
			if len(cov) > 0 {
				aggregatorWrite(f, c, plan, mine, cov, out, phantom, m, em, rloc)
			}
			m.AddRound(r + 1)
		}
	}
}

// aggregatorWrite assembles received pieces and issues the window's
// file writes; shared by the flat and combined write paths. rloc is
// the caller's round-stamped trace location.
func aggregatorWrite(f *iolib.File, c *mpi.Comm, plan *Plan, mine *aggState, cov datatype.List, out []any, phantom bool, m *trace.Metrics, em engineMetrics, rloc obs.Loc) {
	t := c.Tracer()
	covLo, covHi := cov.Extent()
	region := buffer.New(covHi-covLo, phantom)
	var reqs, ioBytes int64
	tIO := c.Now()
	if !plan.ExactWrite && len(cov.Holes()) > 0 {
		sp := t.Begin(obs.PhaseRMW, rloc)
		f.ReadAt(c.Proc(), c.WorldRank(c.Rank()), covLo, region)
		sp.EndBytes(covHi-covLo, 1)
		reqs++
		ioBytes += covHi - covLo
	}
	tAsm := c.Now()
	sp := t.Begin(obs.PhaseAssembly, rloc)
	for _, v := range out {
		if v == nil {
			continue
		}
		piece := v.(shufflePiece)
		iolib.ScatterIntoRegion(region, covLo, piece.segs, piece.data)
	}
	chargeAssembly(c, cov.TotalBytes())
	sp.EndBytes(cov.TotalBytes(), 0)
	m.AddExchange(0, 0, c.Now()-tAsm)
	sp = t.Begin(obs.PhaseIO, rloc)
	if plan.ExactWrite {
		offs := make([]int64, len(cov))
		bufs := make([]buffer.Buf, len(cov))
		for i, run := range cov {
			offs[i] = run.Off
			bufs[i] = region.Slice(run.Off-covLo, run.Len)
			reqs++
			ioBytes += run.Len
		}
		f.WriteVec(c.Proc(), c.WorldRank(c.Rank()), offs, bufs)
	} else {
		f.WriteAt(c.Proc(), c.WorldRank(c.Rank()), covLo, region)
		reqs++
		ioBytes += covHi - covLo
	}
	sp.EndBytes(ioBytes, reqs)
	m.AddIO(ioBytes, reqs, c.Now()-tIO)
	em.aggRound(ioBytes, c.Now()-tIO)
}

// executeReadCombined is ExecuteRead with the two-layer exchange:
// aggregators ship one bundle of per-rank pieces to each node leader;
// leaders fan the pieces out over the memory bus.
func executeReadCombined(f *iolib.File, c *mpi.Comm, vi *iolib.ViewIndex, dst buffer.Buf, plan *Plan, m *trace.Metrics) {
	p := c.Size()
	me := c.Rank()
	t := c.Tracer()
	em := newEngineMetrics(c, "read")
	sched := c.Faults()
	loc := traceLoc(c, plan)
	sp := t.Begin(obs.PhaseReqExchange, loc)
	mine := exchangeRequests(c, vi, plan)
	cs := newCombineState(c, plan)
	cs.gatherViews(c, vi)
	sp.End()
	if mine != nil {
		m.AddAggregator(mine.domain.BufBytes)
	}
	phantom := dst.Phantom()

	vals := make([]any, p)
	bytes := make([]int64, p)
	present := make([]bool, p)

	for r := 0; r < plan.Rounds; r++ {
		rloc := loc
		rloc.Round = r
		sp = t.Begin(obs.PhaseBarrier, rloc)
		c.Barrier()
		sp.End()
		if mine != nil {
			sampleMem(c, r)
		}
		if sched != nil {
			changed := injectRoundFaults(c, sched, plan, r, m, rloc)
			if lf := maybeLeaderFailover(c, sched, plan, r); len(lf) > 0 {
				recordLeaderFailovers(c, sched, lf, rloc)
				changed = true
			}
			if changed {
				// See executeWriteCombined; the read path additionally
				// re-gathers mate views so new leaders can fan out.
				mine = exchangeRequests(c, vi, plan)
				cs = newCombineState(c, plan)
				cs.gatherViews(c, vi)
			}
		}
		clearScratch(vals, bytes, present)

		// Aggregator: read the window's coverage and bundle pieces per
		// destination node.
		var sentIntra, sentInter int64
		if mine != nil && r < len(mine.domain.Windows) {
			w := mine.domain.Windows[r]
			cov := mine.coverage.Clip(w.Off, w.End())
			if len(cov) > 0 {
				covLo, covHi := cov.Extent()
				region := buffer.New(covHi-covLo, phantom)
				tIO := c.Now()
				offs := make([]int64, len(cov))
				bufs := make([]buffer.Buf, len(cov))
				for i, run := range cov {
					offs[i] = run.Off
					bufs[i] = region.Slice(run.Off-covLo, run.Len)
				}
				sp = t.Begin(obs.PhaseIO, rloc)
				f.ReadVec(c.Proc(), c.WorldRank(c.Rank()), offs, bufs)
				sp.EndBytes(cov.TotalBytes(), int64(len(cov)))
				m.AddIO(cov.TotalBytes(), int64(len(cov)), c.Now()-tIO)
				em.aggRound(cov.TotalBytes(), c.Now()-tIO)
				sp = t.Begin(obs.PhaseAssembly, rloc)
				chargeAssembly(c, cov.TotalBytes())

				if cs.merged {
					// Deduplicated shipping (elected-leader mode): the node's
					// mates often request overlapping file ranges (halo reads,
					// shared blocks); ship the *union* of the node's clips once
					// per node and let the leader replicate locally. Inter-node
					// payload shrinks by exactly the shared bytes — the
					// measurable win of the two-layer read path.
					nodeSegs := make(map[int]datatype.List)
					for src := 0; src < p; src++ {
						segs, ok := mine.othersReq[src]
						if !ok {
							continue
						}
						clip := segs.Clip(w.Off, w.End())
						if len(clip) == 0 {
							continue
						}
						l := cs.leaderOf[src]
						nodeSegs[l] = append(nodeSegs[l], clip...)
					}
					for _, leader := range cs.leaders {
						segs, ok := nodeSegs[leader]
						if !ok {
							continue
						}
						union := datatype.Normalize(segs)
						piece := shufflePiece{segs: union, data: iolib.GatherFromRegion(region, covLo, union)}
						vals[leader] = piece
						bytes[leader] = piece.wireBytes()
						i, x := localityOf(c, me, leader, piece.data.Len())
						sentIntra += i
						sentInter += x
					}
				} else {
					// Iterate requesters in rank order so bundles and the
					// leader fan-out are deterministic.
					byLeader := make(map[int][]rankPiece)
					for src := 0; src < p; src++ {
						segs, ok := mine.othersReq[src]
						if !ok {
							continue
						}
						clip := segs.Clip(w.Off, w.End())
						if len(clip) == 0 {
							continue
						}
						piece := shufflePiece{segs: clip, data: iolib.GatherFromRegion(region, covLo, clip)}
						byLeader[cs.leaderOf[src]] = append(byLeader[cs.leaderOf[src]], rankPiece{rank: src, piece: piece})
					}
					for _, leader := range cs.leaders {
						pieces, ok := byLeader[leader]
						if !ok {
							continue
						}
						var wire int64 = 8
						for _, rp := range pieces {
							wire += rp.piece.wireBytes()
						}
						vals[leader] = pieces
						bytes[leader] = wire
						var payload int64
						for _, rp := range pieces {
							payload += rp.piece.data.Len()
						}
						i, x := localityOf(c, me, leader, payload)
						sentIntra += i
						sentInter += x
					}
				}
				sp.EndBytes(cov.TotalBytes(), 0)
			}
			m.AddRound(r + 1)
		}

		// Leader expectation: any mate (including myself) with data in
		// an active window means the owning aggregator will bundle to me.
		if cs.amLeader {
			for _, d := range plan.Domains {
				if r >= len(d.Windows) {
					continue
				}
				w := d.Windows[r]
				for _, mate := range cs.mates {
					if len(cs.views[mate].Clip(w.Off, w.End())) > 0 {
						present[d.Agg] = true
						break
					}
				}
			}
		}

		tExch := c.Now()
		sp = t.Begin(obs.PhaseExchange, rloc)
		out := c.AlltoallSparse(vals, bytes, present)
		sp.EndBytes(sentIntra+sentInter, 0)
		m.AddExchange(sentIntra, sentInter, c.Now()-tExch)
		em.shuffle(sentIntra, sentInter)
		em.exchangeSeconds.Add(c.Now() - tExch)
		if sched != nil {
			dropPenalty(c, sched, plan, r, rloc)
		}

		// Intra-node layer: leaders fan pieces out; every rank knows how
		// many pieces to expect (one per active domain its view hits).
		sp = t.Begin(obs.PhaseIntra, rloc)
		if cs.amLeader && cs.merged {
			// Each received piece is a node union from one aggregator's
			// window; re-clip every mate's view against that window to
			// carve the per-rank pieces locally. The clip equals what the
			// aggregator would have sent flat, so mates see identical data.
			var fanned int64
			for agg, v := range out {
				if v == nil {
					continue
				}
				piece := v.(shufflePiece)
				w, ok := windowOfAgg(plan, agg, r)
				if !ok {
					continue
				}
				lo, hi := piece.segs.Extent()
				region := buffer.New(hi-lo, phantom)
				iolib.ScatterIntoRegion(region, lo, piece.segs, piece.data)
				chargeAssembly(c, piece.data.Len())
				for _, mate := range cs.mates {
					clip := cs.views[mate].Clip(w.Off, w.End())
					if len(clip) == 0 {
						continue
					}
					mdata := iolib.GatherFromRegion(region, lo, clip)
					if mate == me {
						vi.Unpack(dst, clip, mdata)
						continue
					}
					mp := shufflePiece{segs: clip, data: mdata}
					c.SendVal(mate, pieceTag, mp, mp.wireBytes())
					fanned += mdata.Len()
				}
			}
			if fanned > 0 {
				m.AddExchange(fanned, 0, 0)
				em.shuffle(fanned, 0)
			}
		} else if cs.amLeader {
			for _, v := range out {
				if v == nil {
					continue
				}
				for _, rp := range v.([]rankPiece) {
					if rp.rank == me {
						vi.Unpack(dst, rp.piece.segs, rp.piece.data)
						continue
					}
					c.SendVal(rp.rank, pieceTag, rp.piece, rp.piece.wireBytes())
				}
			}
		}
		if !cs.amLeader {
			expect := 0
			for _, d := range plan.Domains {
				if r < len(d.Windows) && len(vi.Clip(d.Windows[r].Off, d.Windows[r].End())) > 0 {
					expect++
				}
			}
			for i := 0; i < expect; i++ {
				piece := c.RecvVal(cs.leaderOf[me], pieceTag).(shufflePiece)
				vi.Unpack(dst, piece.segs, piece.data)
			}
		}
		sp.End()
	}
}
