package collio

import (
	"testing"

	"repro/internal/buffer"
	"repro/internal/cluster"
	"repro/internal/datatype"
	"repro/internal/iolib"
	"repro/internal/mpi"
	"repro/internal/simtime"
	"repro/internal/trace"
)

func TestCombinePiecesConcatenatesAligned(t *testing.T) {
	mk := func(off, n int64, tag uint64) shufflePiece {
		b := buffer.NewReal(n)
		b.Fill(tag, off)
		return shufflePiece{segs: datatype.List{{Off: off, Len: n}}, data: b}
	}
	a := mk(0, 10, 1)
	b := mk(50, 20, 2)
	c := combinePieces([]shufflePiece{a, b}, false)
	if c.data.Len() != 30 || len(c.segs) != 2 {
		t.Fatalf("combined %d bytes, %d segs", c.data.Len(), len(c.segs))
	}
	// Scatter into a region and verify placement.
	region := buffer.NewReal(100)
	iolib.ScatterIntoRegion(region, 0, c.segs, c.data)
	if i := region.Slice(0, 10).Verify(1, 0); i != -1 {
		t.Fatalf("first piece at %d", i)
	}
	if i := region.Slice(50, 20).Verify(2, 50); i != -1 {
		t.Fatalf("second piece at %d", i)
	}
}

func TestCombinePiecesSingleIsIdentity(t *testing.T) {
	p := shufflePiece{segs: datatype.List{{Off: 3, Len: 4}}, data: buffer.NewPhantom(4)}
	if got := combinePieces([]shufflePiece{p}, true); got.data.Len() != 4 || len(got.segs) != 1 {
		t.Fatalf("%+v", got)
	}
}

func TestCombineStateTopology(t *testing.T) {
	e := simtime.NewEngine()
	m, err := cluster.New(cluster.Config{
		Nodes: 3, CoresPerNode: 2, MemPerNode: 1 << 20,
		MemBusBW: 1e9, NICBW: 1e9, BisectionBW: 1e9, IONetBW: 1e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := mpi.NewWorld(e, m, 6)
	if err != nil {
		t.Fatal(err)
	}
	w.Start(func(c *mpi.Comm) {
		cs := newCombineState(c, nil)
		wantLeader := c.Rank() / 2 * 2
		if cs.leaderOf[c.Rank()] != wantLeader {
			t.Errorf("rank %d leader %d, want %d", c.Rank(), cs.leaderOf[c.Rank()], wantLeader)
		}
		if cs.amLeader != (c.Rank()%2 == 0) {
			t.Errorf("rank %d amLeader=%v", c.Rank(), cs.amLeader)
		}
		if cs.amLeader && len(cs.mates) != 2 {
			t.Errorf("rank %d mates %v", c.Rank(), cs.mates)
		}
		if len(cs.leaders) != 3 {
			t.Errorf("leaders %v", cs.leaders)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestCombinedTwoPhaseRoundTripInPackage drives the combined engine via
// the baseline planner entirely within this package.
func TestCombinedTwoPhaseRoundTripInPackage(t *testing.T) {
	e, m, fs := testRig(t, 2, 3, 64*cluster.MiB)
	w, err := mpi.NewWorld(e, m, 6)
	if err != nil {
		t.Fatal(err)
	}
	f := iolib.Open(fs, "x")
	w.Start(func(c *mpi.Comm) {
		view := interleavedView(c.Rank(), 6, 8, 2<<10)
		data := fillViewBuffer(view, uint64(c.Rank()))
		tp := TwoPhase{CBBuffer: 32 << 10, NodeCombine: true}
		var mtr trace.Metrics
		tp.WriteAll(f, c, view, data, &mtr)
		c.Barrier()
		dst := fillViewBuffer(view, 999)
		tp.ReadAll(f, c, view, dst, &mtr)
		var pos int64
		for _, s := range view {
			if i := dst.Slice(pos, s.Len).Verify(uint64(c.Rank()), s.Off); i != -1 {
				t.Errorf("rank %d segment %v mismatch at %d", c.Rank(), s, i)
			}
			pos += s.Len
		}
		// Only aggregators record rounds in their local metrics.
		if mtr.Aggregators > 0 && mtr.Rounds == 0 {
			t.Error("aggregator recorded no rounds")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCombinedSingleRankPerNode(t *testing.T) {
	// Degenerate combining: every rank is its own leader; the combined
	// engine must behave exactly like the flat one.
	e, m, fs := testRig(t, 4, 1, 64*cluster.MiB)
	w, err := mpi.NewWorld(e, m, 4)
	if err != nil {
		t.Fatal(err)
	}
	f := iolib.Open(fs, "x")
	w.Start(func(c *mpi.Comm) {
		view := interleavedView(c.Rank(), 4, 4, 4<<10)
		data := fillViewBuffer(view, uint64(c.Rank()))
		tp := TwoPhase{CBBuffer: 16 << 10, NodeCombine: true}
		tp.WriteAll(f, c, view, data, &trace.Metrics{})
		c.Barrier()
		dst := fillViewBuffer(view, 999)
		tp.ReadAll(f, c, view, dst, &trace.Metrics{})
		var pos int64
		for _, s := range view {
			if i := dst.Slice(pos, s.Len).Verify(uint64(c.Rank()), s.Off); i != -1 {
				t.Errorf("rank %d segment %v mismatch at %d", c.Rank(), s, i)
			}
			pos += s.Len
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
