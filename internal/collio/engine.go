package collio

import (
	"repro/internal/buffer"
	"repro/internal/datatype"
	"repro/internal/iolib"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/trace"
)

// traceLoc is the calling rank's track identity for engine spans:
// world rank and node, stamped with the plan's aggregation group.
// Round is -1; per-round spans override it.
func traceLoc(c *mpi.Comm, plan *Plan) obs.Loc {
	return obs.Loc{Rank: c.WorldRank(c.Rank()), Node: c.NodeOf(c.Rank()), Group: plan.Group, Round: -1}
}

// reqList is the upfront request metadata a rank sends each aggregator
// whose domain its extent touches: its view clipped to that domain.
type reqList struct {
	segs datatype.List
}

// shufflePiece is one round's payload between a rank and an aggregator:
// the clipped segments plus their packed bytes.
type shufflePiece struct {
	segs datatype.List
	data buffer.Buf
}

func (s shufflePiece) wireBytes() int64 {
	return s.data.Len() + int64(len(s.segs))*extBytes
}

// aggState is what an aggregator accumulates during one collective.
type aggState struct {
	domain    Domain
	othersReq map[int]datatype.List // comm rank -> its segments in my domain
	reqOrder  []reqEntry            // same entries, ascending src; per-round scans iterate this
	coverage  datatype.List         // union of othersReq
}

// reqEntry is one requesting rank's segments, in the compact form the
// per-round hot loops scan (ranging the othersReq map every round cost
// measurable iterator time at large communicator sizes).
type reqEntry struct {
	src  int
	segs datatype.List
}

// exchangeRequests performs the upfront metadata exchange and returns
// this rank's aggregator state (nil if it owns no domain).
func exchangeRequests(c *mpi.Comm, vi *iolib.ViewIndex, plan *Plan) *aggState {
	p := c.Size()
	var mine *aggState
	for _, d := range plan.Domains {
		if d.Agg == c.Rank() {
			mine = &aggState{domain: d, othersReq: make(map[int]datatype.List)}
		}
	}
	myExt := plan.Exts[c.Rank()]

	vals := make([]any, p)
	bytes := make([]int64, p)
	present := make([]bool, p)
	for _, d := range plan.Domains {
		if !myExt.Empty() && myExt.Lo < d.Hi && myExt.Hi > d.Lo {
			segs := vi.Clip(d.Lo, d.Hi)
			vals[d.Agg] = reqList{segs: segs}
			bytes[d.Agg] = int64(len(segs))*extBytes + 8
		}
	}
	if mine != nil {
		for src := 0; src < p; src++ {
			e := plan.Exts[src]
			present[src] = !e.Empty() && e.Lo < mine.domain.Hi && e.Hi > mine.domain.Lo
		}
	}
	out := c.AlltoallSparse(vals, bytes, present)
	if mine != nil {
		var all datatype.List
		for src, v := range out {
			if v == nil {
				continue
			}
			segs := v.(reqList).segs
			if len(segs) > 0 {
				mine.othersReq[src] = segs
				mine.reqOrder = append(mine.reqOrder, reqEntry{src: src, segs: segs})
				all = append(all, segs...)
			}
		}
		mine.coverage = datatype.Normalize(all)
	}
	return mine
}

// sampleMem records the calling aggregator's node-ledger state (used,
// high-water, capacity) into the decision audit at a round boundary,
// stamped with the caller's virtual time. Nil-recorder safe and
// allocation-free when the audit trail is disabled.
func sampleMem(c *mpi.Comm, round int) {
	rec := c.Explain()
	if !rec.Enabled() {
		return
	}
	node := c.World().Machine().Node(c.NodeOf(c.Rank()))
	rec.MemSample(node.ID, round, node.Used(), node.HighWater(), node.Capacity)
}

// chargeAssembly models the extra off-chip pass an aggregator pays to
// scatter/gather between its collective buffer and the shuffle
// payloads — the memory-bandwidth pressure the paper is about.
func chargeAssembly(c *mpi.Comm, bytes int64) {
	if bytes <= 0 {
		return
	}
	node := c.World().Machine().Node(c.NodeOf(c.Rank()))
	node.MemBus.Transfer(c.Proc(), bytes)
}

// clearScratch zeroes the per-round exchange arrays.
func clearScratch(vals []any, bytes []int64, present []bool) {
	for i := range vals {
		vals[i] = nil
		bytes[i] = 0
		present[i] = false
	}
}

// localityOf splits a payload size into (intra, inter) node bytes for
// traffic metrics.
func localityOf(c *mpi.Comm, a, b int, n int64) (int64, int64) {
	if c.NodeOf(a) == c.NodeOf(b) {
		return n, 0
	}
	return 0, n
}

// ExecuteWrite runs the two-phase write rounds for plan. Every rank of
// c must call it with its own view/data; the plan must be identical on
// all ranks. Aggregation buffers must already be charged to the memory
// ledger by the strategy; the engine only reports them.
func ExecuteWrite(f *iolib.File, c *mpi.Comm, vi *iolib.ViewIndex, data buffer.Buf, plan *Plan, m *trace.Metrics) {
	if err := plan.Validate(c.Size()); err != nil {
		panic(err)
	}
	if plan.NodeCombine {
		executeWriteCombined(f, c, vi, data, plan, m)
		return
	}
	p := c.Size()
	t := c.Tracer()
	em := newEngineMetrics(c, "write")
	sched := c.Faults()
	loc := traceLoc(c, plan)
	sp := t.Begin(obs.PhaseReqExchange, loc)
	mine := exchangeRequests(c, vi, plan)
	sp.End()
	if mine != nil {
		m.AddAggregator(mine.domain.BufBytes)
	}
	phantom := data.Phantom()

	// Per-collective scratch, reused across rounds (allocating per
	// round dominated GC time at 1080 ranks). pieces backs the boxed
	// *shufflePiece payloads — boxing the struct by value allocated on
	// every send; a pointer into a reused array does not. The arena
	// recycles every per-round clipped list; it resets at the round
	// barrier, by which point the previous round's pieces (ours and our
	// peers') are all consumed. See DESIGN.md §14 for the ownership
	// rules.
	ex := c.SparseScratch()
	pieces := make([]shufflePiece, p)
	var arena datatype.Arena
	var offs []int64
	var bufs []buffer.Buf

	for r := 0; r < plan.Rounds; r++ {
		rloc := loc
		rloc.Round = r
		// ROMIO's per-round alltoallv of counts synchronizes the whole
		// communicator: nobody starts round r+1 until the slowest
		// aggregator finishes round r. The barrier reproduces that
		// lock-step — and because strategies pass their own (possibly
		// group-local) communicator, subgroup strategies pay it only
		// across their group, which is the decoupling the paper's group
		// division buys.
		sp = t.Begin(obs.PhaseBarrier, rloc)
		c.Barrier()
		sp.End()
		if mine != nil {
			sampleMem(c, r)
		}
		if sched != nil && injectRoundFaults(c, sched, plan, r, m, rloc) {
			// Failover changed the plan: redo the request exchange so
			// coverage and routing reflect the remerged domains, then
			// resume this round. Collective — every rank takes this
			// branch for the same rounds (the decision is pure).
			mine = exchangeRequests(c, vi, plan)
		}
		ex.Reset()
		arena.Reset()

		// Sender side: pack my pieces for every domain active this round.
		var sentIntra, sentInter int64
		sp = t.Begin(obs.PhasePack, rloc)
		for di := range plan.Domains {
			d := &plan.Domains[di]
			if r >= len(d.Windows) {
				continue
			}
			w := d.Windows[r]
			segs, packed := vi.PackArena(&arena, data, w.Off, w.End())
			if len(segs) == 0 {
				continue
			}
			pieces[d.Agg] = shufflePiece{segs: segs, data: packed}
			ex.Stage(d.Agg, &pieces[d.Agg], pieces[d.Agg].wireBytes())
			i, x := localityOf(c, c.Rank(), d.Agg, packed.Len())
			sentIntra += i
			sentInter += x
		}
		sp.EndBytes(sentIntra+sentInter, 0)
		// Receiver side: I expect from every rank whose requests
		// intersect my current window.
		if mine != nil && r < len(mine.domain.Windows) {
			w := mine.domain.Windows[r]
			for _, en := range mine.reqOrder {
				if en.segs.Intersects(w.Off, w.End()) {
					ex.Expect(en.src)
				}
			}
		}

		tExch := c.Now()
		sp = t.Begin(obs.PhaseExchange, rloc)
		ex.Exchange()
		sp.EndBytes(sentIntra+sentInter, 0)
		m.AddExchange(sentIntra, sentInter, c.Now()-tExch)
		em.shuffle(sentIntra, sentInter)
		em.exchangeSeconds.Add(c.Now() - tExch)
		if sched != nil {
			dropPenalty(c, sched, plan, r, rloc)
		}

		// Aggregator: assemble and write this window.
		if mine != nil && r < len(mine.domain.Windows) {
			w := mine.domain.Windows[r]
			cov := arena.Clip(mine.coverage, w.Off, w.End())
			if len(cov) > 0 {
				covLo, covHi := cov.Extent()
				region := buffer.New(covHi-covLo, phantom)
				var reqs, ioBytes int64
				tIO := c.Now()
				if !plan.ExactWrite && len(cov.Holes()) > 0 {
					// Read-modify-write: fetch the extent so the bytes
					// between requests survive. Safe only for a single
					// global collective (see Plan.ExactWrite).
					sp = t.Begin(obs.PhaseRMW, rloc)
					f.ReadAt(c.Proc(), c.WorldRank(c.Rank()), covLo, region)
					sp.EndBytes(covHi-covLo, 1)
					reqs++
					ioBytes += covHi - covLo
				}
				tAsm := c.Now()
				sp = t.Begin(obs.PhaseAssembly, rloc)
				ex.Received(func(_ int, v any) {
					piece := v.(*shufflePiece)
					iolib.ScatterIntoRegion(region, covLo, piece.segs, piece.data)
				})
				chargeAssembly(c, cov.TotalBytes())
				sp.EndBytes(cov.TotalBytes(), 0)
				m.AddExchange(0, 0, c.Now()-tAsm)
				sp = t.Begin(obs.PhaseIO, rloc)
				if plan.ExactWrite {
					// One request per covered run, issued as a pipelined
					// batch: never touches bytes between requests, so
					// concurrent groups interleave safely.
					offs, bufs = offs[:0], bufs[:0]
					for _, run := range cov {
						offs = append(offs, run.Off)
						bufs = append(bufs, region.Slice(run.Off-covLo, run.Len))
						reqs++
						ioBytes += run.Len
					}
					f.WriteVec(c.Proc(), c.WorldRank(c.Rank()), offs, bufs)
				} else {
					f.WriteAt(c.Proc(), c.WorldRank(c.Rank()), covLo, region)
					reqs++
					ioBytes += covHi - covLo
				}
				sp.EndBytes(ioBytes, reqs)
				m.AddIO(ioBytes, reqs, c.Now()-tIO)
				em.aggRound(ioBytes, c.Now()-tIO)
			}
			m.AddRound(r + 1)
		}
	}
}

// ExecuteRead runs the two-phase read rounds for plan: aggregators read
// their window's covered extent and ship each rank its pieces; ranks
// unpack into dst.
func ExecuteRead(f *iolib.File, c *mpi.Comm, vi *iolib.ViewIndex, dst buffer.Buf, plan *Plan, m *trace.Metrics) {
	if err := plan.Validate(c.Size()); err != nil {
		panic(err)
	}
	if plan.NodeCombine {
		executeReadCombined(f, c, vi, dst, plan, m)
		return
	}
	p := c.Size()
	t := c.Tracer()
	em := newEngineMetrics(c, "read")
	sched := c.Faults()
	loc := traceLoc(c, plan)
	sp := t.Begin(obs.PhaseReqExchange, loc)
	mine := exchangeRequests(c, vi, plan)
	sp.End()
	if mine != nil {
		m.AddAggregator(mine.domain.BufBytes)
	}
	phantom := dst.Phantom()

	// Per-collective scratch, reused across rounds; see ExecuteWrite
	// for the pieces/arena ownership rules.
	ex := c.SparseScratch()
	pieces := make([]shufflePiece, p)
	var arena datatype.Arena
	var offs []int64
	var bufs []buffer.Buf

	for r := 0; r < plan.Rounds; r++ {
		rloc := loc
		rloc.Round = r
		// Same lock-step as the write path; see ExecuteWrite.
		sp = t.Begin(obs.PhaseBarrier, rloc)
		c.Barrier()
		sp.End()
		if mine != nil {
			sampleMem(c, r)
		}
		if sched != nil && injectRoundFaults(c, sched, plan, r, m, rloc) {
			// See ExecuteWrite: redo the request exchange post-failover.
			mine = exchangeRequests(c, vi, plan)
		}
		ex.Reset()
		arena.Reset()

		// Aggregator: read my window's coverage and carve per-rank pieces.
		var sentIntra, sentInter int64
		if mine != nil && r < len(mine.domain.Windows) {
			w := mine.domain.Windows[r]
			cov := arena.Clip(mine.coverage, w.Off, w.End())
			if len(cov) > 0 {
				covLo, covHi := cov.Extent()
				region := buffer.New(covHi-covLo, phantom)
				tIO := c.Now()
				// Read exactly the covered runs as one pipelined batch —
				// a sparse window (grouped strategies) would otherwise
				// fetch more hole bytes than data.
				offs, bufs = offs[:0], bufs[:0]
				for _, run := range cov {
					offs = append(offs, run.Off)
					bufs = append(bufs, region.Slice(run.Off-covLo, run.Len))
				}
				sp = t.Begin(obs.PhaseIO, rloc)
				f.ReadVec(c.Proc(), c.WorldRank(c.Rank()), offs, bufs)
				sp.EndBytes(cov.TotalBytes(), int64(len(cov)))
				m.AddIO(cov.TotalBytes(), int64(len(cov)), c.Now()-tIO)
				em.aggRound(cov.TotalBytes(), c.Now()-tIO)
				sp = t.Begin(obs.PhaseAssembly, rloc)
				chargeAssembly(c, cov.TotalBytes())
				for _, en := range mine.reqOrder {
					clip := arena.Clip(en.segs, w.Off, w.End())
					if len(clip) == 0 {
						continue
					}
					pieces[en.src] = shufflePiece{segs: clip, data: iolib.GatherFromRegion(region, covLo, clip)}
					ex.Stage(en.src, &pieces[en.src], pieces[en.src].wireBytes())
					i, x := localityOf(c, c.Rank(), en.src, pieces[en.src].data.Len())
					sentIntra += i
					sentInter += x
				}
				sp.EndBytes(cov.TotalBytes(), 0)
			}
			m.AddRound(r + 1)
		}
		// Rank side: I expect a piece from every domain whose window
		// intersects my view this round.
		for di := range plan.Domains {
			d := &plan.Domains[di]
			if r >= len(d.Windows) {
				continue
			}
			w := d.Windows[r]
			if vi.Intersects(w.Off, w.End()) {
				ex.Expect(d.Agg)
			}
		}

		tExch := c.Now()
		sp = t.Begin(obs.PhaseExchange, rloc)
		ex.Exchange()
		sp.EndBytes(sentIntra+sentInter, 0)
		m.AddExchange(sentIntra, sentInter, c.Now()-tExch)
		em.shuffle(sentIntra, sentInter)
		em.exchangeSeconds.Add(c.Now() - tExch)
		if sched != nil {
			dropPenalty(c, sched, plan, r, rloc)
		}

		sp = t.Begin(obs.PhasePack, rloc)
		ex.Received(func(_ int, v any) {
			piece := v.(*shufflePiece)
			vi.Unpack(dst, piece.segs, piece.data)
		})
		sp.End()
	}
}
