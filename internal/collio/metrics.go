package collio

import (
	"repro/internal/metrics"
	"repro/internal/mpi"
)

// engineMetrics bundles the instrument handles the two-phase round
// loop touches. Handles are resolved once per collective (per rank),
// so the per-round cost is a handful of atomic updates — and nothing
// at all when no registry is attached (every handle nil).
type engineMetrics struct {
	rounds          *metrics.Counter
	shuffleIntra    *metrics.Counter
	shuffleInter    *metrics.Counter
	exchangeSeconds *metrics.Counter
	ioSeconds       *metrics.Counter
	roundIOBytes    *metrics.Histogram
}

func newEngineMetrics(c *mpi.Comm, op string) engineMetrics {
	r := c.Metrics()
	return engineMetrics{
		rounds: r.Counter("mccio_engine_rounds_total",
			"Two-phase rounds executed by aggregators.", "op", op),
		shuffleIntra: r.Counter("mccio_shuffle_bytes_total",
			"Shuffle payload bytes exchanged between ranks and aggregators.",
			"op", op, "locality", "intra"),
		shuffleInter: r.Counter("mccio_shuffle_bytes_total",
			"Shuffle payload bytes exchanged between ranks and aggregators.",
			"op", op, "locality", "inter"),
		exchangeSeconds: r.Counter("mccio_exchange_seconds_total",
			"Virtual seconds aggregators spent in the shuffle exchange.", "op", op),
		ioSeconds: r.Counter("mccio_io_seconds_total",
			"Virtual seconds aggregators spent in file I/O.", "op", op),
		roundIOBytes: r.Histogram("mccio_round_io_bytes",
			"File bytes moved per aggregator round.", metrics.DefBytesBuckets(), "op", op),
	}
}

// shuffle accounts one rank's packed payload for a round.
func (em *engineMetrics) shuffle(intra, inter int64) {
	em.shuffleIntra.Add(float64(intra))
	em.shuffleInter.Add(float64(inter))
}

// aggRound accounts an aggregator finishing one round of I/O.
func (em *engineMetrics) aggRound(ioBytes int64, ioSec float64) {
	em.rounds.Inc()
	em.ioSeconds.Add(ioSec)
	if ioBytes > 0 {
		em.roundIOBytes.Observe(float64(ioBytes))
	}
}
