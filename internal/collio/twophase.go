package collio

import (
	"repro/internal/buffer"
	"repro/internal/datatype"
	"repro/internal/iolib"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/trace"
)

// BufFloor is the smallest effective aggregation buffer; even a
// memory-starved aggregator can stage this much.
const BufFloor = 64 << 10

// TwoPhase is the ROMIO-style baseline: one aggregator per physical
// node (the lowest rank on each node), the aggregate file extent split
// evenly by offset into one file domain per aggregator, and a fixed
// collective buffer of CBBuffer bytes per aggregator — ROMIO's
// cb_buffer_size. The aggregator set is chosen independently of the
// data distribution and of memory availability, exactly the properties
// the paper criticises at scale.
type TwoPhase struct {
	// CBBuffer is the nominal collective buffer per aggregator. The
	// effective buffer is capped by the aggregator node's physically
	// available memory (a buffer cannot exceed the RAM that exists) and
	// floored at BufFloor.
	CBBuffer int64
	// NodeCombine enables the two-layer intra/inter-node exchange for
	// the baseline too, so the mechanism can be studied in isolation.
	NodeCombine bool
	// AlignStripe, when positive, rounds file-domain boundaries down to
	// a multiple of this size — ROMIO's Lustre-aware domain alignment,
	// which keeps each stripe's lock traffic on a single aggregator.
	AlignStripe int64
}

// Name implements iolib.Collective.
func (tp TwoPhase) Name() string { return "two-phase" }

// BuildPlan computes the baseline schedule. Every rank calls it inside
// the collective; the result is identical everywhere because it is a
// pure function of allgathered metadata.
func (tp TwoPhase) BuildPlan(c *mpi.Comm, view datatype.List) *Plan {
	lo, hi := view.Extent()
	raw := c.Allgather(Ext{Lo: lo, Hi: hi}, extBytes)
	exts := make([]Ext, len(raw))
	empty := true
	for i, v := range raw {
		exts[i] = v.(Ext)
		empty = empty && exts[i].Empty()
	}
	if empty { // nobody has data; skip the availability gather
		return &Plan{Exts: exts, NodeCombine: tp.NodeCombine}
	}

	// Physically available memory per rank's node, so every rank can
	// size every aggregator's effective buffer identically.
	machine := c.World().Machine()
	availRaw := c.Allgather(machine.Node(c.NodeOf(c.Rank())).Available(), 8)
	nodeOf := make([]int, c.Size())
	avail := make([]int64, c.Size())
	for r := 0; r < c.Size(); r++ {
		nodeOf[r] = c.NodeOf(r)
		avail[r] = availRaw[r].(int64)
	}
	return tp.PlanFromMeta(exts, nodeOf, avail)
}

// PlanFromMeta builds the baseline schedule from already-gathered
// metadata: per-rank extents, each rank's node, and each rank's node
// availability. The pure core of BuildPlan, shared with the offline
// plan service.
func (tp TwoPhase) PlanFromMeta(exts []Ext, nodeOf []int, avail []int64) *Plan {
	gLo, gHi := int64(0), int64(0)
	first := true
	for _, e := range exts {
		if e.Empty() {
			continue
		}
		if first || e.Lo < gLo {
			gLo = e.Lo
		}
		if first || e.Hi > gHi {
			gHi = e.Hi
		}
		first = false
	}
	plan := &Plan{Exts: exts, NodeCombine: tp.NodeCombine}
	if first { // nobody has data
		return plan
	}

	// One aggregator per node: lowest comm rank on each node.
	var aggs []int
	lastNode := -1
	for r := 0; r < len(nodeOf); r++ {
		if n := nodeOf[r]; n != lastNode {
			aggs = append(aggs, r)
			lastNode = n
		}
	}

	fd := (gHi - gLo + int64(len(aggs)) - 1) / int64(len(aggs))
	if a := tp.AlignStripe; a > 0 {
		// Round the domain size up to a stripe multiple so boundaries
		// fall on stripe edges (the last domain absorbs the remainder).
		fd = (fd + a - 1) / a * a
	}
	for i, agg := range aggs {
		dLo := gLo + int64(i)*fd
		dHi := dLo + fd
		if dHi > gHi {
			dHi = gHi
		}
		if dHi <= dLo {
			break
		}
		buf := tp.CBBuffer
		if av := avail[agg]; buf > av {
			buf = av
		}
		if buf < BufFloor {
			buf = BufFloor
		}
		plan.Domains = append(plan.Domains, Domain{
			Agg: agg, Lo: dLo, Hi: dHi,
			BufBytes: buf,
			Windows:  OffsetWindows(dLo, dHi, buf),
		})
	}
	plan.Rounds = plan.maxRounds()
	// Pair consecutive domains for runtime failover: even absorbs odd and
	// vice versa; a trailing unpaired domain leans on its left neighbour.
	for i := range plan.Domains {
		s := i ^ 1
		if s >= len(plan.Domains) {
			s = i - 1
		}
		plan.Domains[i].Sibling = s
	}
	return plan
}

// myDomain returns the domain owned by this rank, or nil.
func myDomain(c *mpi.Comm, plan *Plan) *Domain {
	for i := range plan.Domains {
		if plan.Domains[i].Agg == c.Rank() {
			return &plan.Domains[i]
		}
	}
	return nil
}

// chargeBuffer reserves an aggregator's collective buffer on its node's
// ledger and returns a release func. The baseline sized the buffer
// within physical capacity, but another aggregator (or strategy layer)
// may have claimed memory meanwhile; MustAlloc keeps the overcommit
// visible in the high-water reports rather than failing.
func chargeBuffer(c *mpi.Comm, d *Domain) func() {
	node := c.World().Machine().Node(c.NodeOf(c.Rank()))
	if !node.Alloc(d.BufBytes) {
		node.MustAlloc(d.BufBytes)
	}
	return func() { node.Free(d.BufBytes) }
}

// WriteAll implements iolib.Collective.
func (tp TwoPhase) WriteAll(f *iolib.File, c *mpi.Comm, view datatype.List, data buffer.Buf, m *trace.Metrics) {
	sp := c.Tracer().Begin(obs.PhasePlan, obs.Loc{Rank: c.WorldRank(c.Rank()), Node: c.NodeOf(c.Rank()), Group: 0, Round: -1})
	plan := tp.BuildPlan(c, view)
	sp.End()
	m.SetGroups(1)
	vi := iolib.NewViewIndex(view)
	var release func()
	if d := myDomain(c, plan); d != nil {
		release = chargeBuffer(c, d)
	}
	ExecuteWrite(f, c, vi, data, plan, m)
	if release != nil {
		release()
	}
}

// ReadAll implements iolib.Collective.
func (tp TwoPhase) ReadAll(f *iolib.File, c *mpi.Comm, view datatype.List, dst buffer.Buf, m *trace.Metrics) {
	sp := c.Tracer().Begin(obs.PhasePlan, obs.Loc{Rank: c.WorldRank(c.Rank()), Node: c.NodeOf(c.Rank()), Group: 0, Round: -1})
	plan := tp.BuildPlan(c, view)
	sp.End()
	m.SetGroups(1)
	vi := iolib.NewViewIndex(view)
	var release func()
	if d := myDomain(c, plan); d != nil {
		release = chargeBuffer(c, d)
	}
	ExecuteRead(f, c, vi, dst, plan, m)
	if release != nil {
		release()
	}
}
