// Package collio implements two-phase collective I/O.
//
// It has two layers:
//
//   - The round engine (ExecuteWrite / ExecuteRead): given a Plan — a
//     set of file domains, each owned by one aggregator with a window
//     schedule — it performs the upfront request exchange, then the
//     lock-step rounds of shuffle + file I/O that define two-phase
//     collective I/O.
//   - The TwoPhase strategy: ROMIO's classic plan — one aggregator per
//     node, the aggregate file extent split evenly by offset, a fixed
//     collective buffer.
//
// The memory-conscious strategy (internal/core) builds different plans
// — aggregation groups, partition-tree domains, memory-aware aggregator
// placement — and runs them on the same engine, which mirrors how the
// paper positions MCCIO as an enhancement of two-phase rather than a
// replacement.
package collio

import (
	"fmt"

	"repro/internal/datatype"
)

// Ext is one rank's access extent, the coarse metadata ROMIO allgathers
// before building file domains.
type Ext struct {
	Lo, Hi int64 // half-open; Lo == Hi means no data
}

// extBytes is the charged wire size of an Ext.
const extBytes = 16

// Empty reports whether the extent covers nothing.
func (e Ext) Empty() bool { return e.Hi <= e.Lo }

// Domain is one aggregator's file domain and round schedule.
type Domain struct {
	Agg      int                // comm rank of the owning aggregator
	Lo, Hi   int64              // file extent of the domain (half-open)
	BufBytes int64              // aggregation buffer charged to the ledger
	Windows  []datatype.Segment // per-round file windows, in order

	// Sibling is the index (into Plan.Domains) of the domain that
	// absorbs this one under runtime failover — the partition tree's
	// adjacent leaf for MCCIO plans, the paired neighbour for the
	// baseline. -1 (or an invalid index) falls back to the nearest
	// surviving domain. See failover.go.
	Sibling int
	// NodeAvail is the aggregator node's available memory in the
	// planner's consistent snapshot; with Plan.MemMin it drives the
	// memory-exhaustion failover predicate. 0 disables that predicate
	// for the domain.
	NodeAvail int64
}

// Rounds returns the number of rounds this domain needs.
func (d Domain) Rounds() int { return len(d.Windows) }

// Plan is a complete collective schedule, computed identically by every
// rank from allgathered metadata.
type Plan struct {
	Domains []Domain
	Exts    []Ext // per comm rank, from the strategy's allgather
	Rounds  int   // max over domains

	// Group is the aggregation-group index this plan executes for —
	// the trace/observability identity of the schedule. Single-group
	// strategies leave it 0; the memory-conscious strategy stamps each
	// group's plan with its color.
	Group int

	// NodeCombine enables the two-layer (intra-node, inter-node)
	// exchange: ranks funnel their round pieces to a per-node leader
	// over the memory bus and only leaders cross the fabric. See
	// combine.go.
	NodeCombine bool

	// LeaderOf, when non-nil, overrides the combine layer's default
	// lowest-rank-per-node leader choice: LeaderOf[r] is the comm rank
	// leading r's node. The two-layer strategy sets it from its
	// memory-aware election; it also switches the combine layer into
	// merged-piece mode (leaders coalesce adjacent segments, read
	// aggregators deduplicate node-shared data). Length must equal the
	// comm size when set, and every rank of a node must map to the
	// same leader. nil keeps the legacy lowest-rank behaviour.
	LeaderOf []int

	// LeaderSucc, when non-nil alongside LeaderOf, is each rank's
	// node-local succession line: the node's comm ranks in election
	// order (best score first). Leader failover walks it to hand a
	// dead leader's role to the next surviving rank on the same node.
	// Ranks of one node share the same backing slice.
	LeaderSucc [][]int

	// ExactWrite makes aggregators write each covered run as its own
	// request instead of read-modify-writing the window extent. A
	// single global collective may safely RMW its holes (nobody else
	// writes them during the operation), but disjoint aggregation
	// groups running concurrently interleave in the file — an extent
	// RMW in one group would resurrect stale bytes over another
	// group's fresh writes. Group-based strategies must set this.
	ExactWrite bool

	// MemMin, when positive, arms the memory-exhaustion failover
	// predicate: a domain whose node's snapshot availability minus the
	// injected fault pressure falls below MemMin loses its aggregator
	// mid-run (the planner's Mem_min constraint enforced dynamically).
	MemMin int64

	// Failover guard state (see maybeFailover): rounds checked so far
	// and the last check's events. On plans shared by pointer across a
	// group the first rank to reach a round runs the check and mutates;
	// the rest read foLast. The per-round barrier guarantees every rank
	// finished round r's check before any rank reaches round r+1's.
	foRound int
	foLast  []FoEvent

	// Leader-failover guard state, same protocol as foRound/foLast but
	// for the per-round leadership check (see maybeLeaderFailover).
	lfRound int
	lfLast  []LeaderFoEvent
}

// Validate checks the invariants the engine relies on: one domain per
// aggregator, windows inside the domain and strictly ordered.
func (p *Plan) Validate(commSize int) error {
	seen := make(map[int]bool, len(p.Domains))
	for i, d := range p.Domains {
		if d.Agg < 0 || d.Agg >= commSize {
			return fmt.Errorf("collio: domain %d aggregator %d out of comm size %d", i, d.Agg, commSize)
		}
		if seen[d.Agg] {
			return fmt.Errorf("collio: aggregator %d owns two domains", d.Agg)
		}
		seen[d.Agg] = true
		if d.Hi < d.Lo {
			return fmt.Errorf("collio: domain %d negative extent [%d,%d)", i, d.Lo, d.Hi)
		}
		if d.BufBytes <= 0 && len(d.Windows) > 0 {
			return fmt.Errorf("collio: domain %d has windows but no buffer", i)
		}
		prev := d.Lo
		for j, w := range d.Windows {
			if w.Len <= 0 || w.Off < prev || w.End() > d.Hi {
				return fmt.Errorf("collio: domain %d window %d %v escapes [%d,%d) or disordered", i, j, w, d.Lo, d.Hi)
			}
			prev = w.End()
		}
	}
	if len(p.Exts) != commSize {
		return fmt.Errorf("collio: plan has %d extents for comm of %d", len(p.Exts), commSize)
	}
	if p.LeaderOf != nil {
		if len(p.LeaderOf) != commSize {
			return fmt.Errorf("collio: plan has %d leader entries for comm of %d", len(p.LeaderOf), commSize)
		}
		for r, l := range p.LeaderOf {
			if l < 0 || l >= commSize {
				return fmt.Errorf("collio: rank %d leader %d out of comm size %d", r, l, commSize)
			}
		}
	}
	return nil
}

// maxRounds recomputes Rounds from the domains.
func (p *Plan) maxRounds() int {
	r := 0
	for _, d := range p.Domains {
		if d.Rounds() > r {
			r = d.Rounds()
		}
	}
	return r
}

// OffsetWindows slices [lo, hi) into consecutive windows of buf bytes —
// the baseline schedule: the aggregator marches through its domain by
// file offset, buf bytes of *extent* at a time.
func OffsetWindows(lo, hi, buf int64) []datatype.Segment {
	if buf <= 0 {
		panic(fmt.Sprintf("collio: window buffer %d", buf))
	}
	var out []datatype.Segment
	for off := lo; off < hi; off += buf {
		n := buf
		if off+n > hi {
			n = hi - off
		}
		out = append(out, datatype.Segment{Off: off, Len: n})
	}
	return out
}

// CoverageWindows slices a domain so each window holds at most buf
// *covered* bytes of coverage (the union of requests inside the
// domain). Where coverage is sparse — the memory-conscious groups see
// this on interleaved workloads — offset windows would spin through
// empty rounds; coverage windows advance by data instead. Window bounds
// snap to coverage so no window starts or ends inside a hole.
func CoverageWindows(coverage datatype.List, buf int64) []datatype.Segment {
	if buf <= 0 {
		panic(fmt.Sprintf("collio: window buffer %d", buf))
	}
	var out []datatype.Segment
	var cur datatype.Segment
	var curData int64
	flush := func() {
		if curData > 0 {
			out = append(out, cur)
			curData = 0
		}
	}
	for _, s := range coverage {
		for s.Len > 0 {
			if curData == 0 {
				cur = datatype.Segment{Off: s.Off, Len: 0}
			}
			take := buf - curData
			if take > s.Len {
				take = s.Len
			}
			cur.Len = s.Off + take - cur.Off
			curData += take
			s.Off += take
			s.Len -= take
			if curData == buf {
				flush()
			}
		}
	}
	flush()
	return out
}
